// Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.
//
// Cost model: observability is off by default, and a disabled
// instrumentation site costs exactly one relaxed atomic load (the enabled
// flag) — the registry lookup behind each macro only runs once a site is
// actually hit while enabled. When enabled, the hot path is a lock-free
// relaxed atomic add; the registry mutex is taken only at first
// registration of a name and when snapshotting.
//
// Compiling with -DPRCOST_NO_OBS turns every PRCOST_* macro into a no-op,
// the hard floor for zero-overhead builds.
//
// Metric naming convention: "<subsystem>.<event>", lower_snake, e.g.
// "prr_search.candidates_rejected" or "sim.reconfig_bytes".
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/ints.hpp"

namespace prcost::obs {

/// Global metrics switch. Relaxed load: instrumentation sites check this
/// before touching the registry.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(u64 delta = 1) noexcept {
    if (metrics_enabled()) add_unchecked(delta);
  }
  /// Caller already checked metrics_enabled() (the macros do).
  void add_unchecked(u64 delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  u64 value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Last-written point-in-time value.
class Gauge {
 public:
  void set(double v) noexcept {
    if (metrics_enabled()) set_unchecked(v);
  }
  void set_unchecked(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with prometheus-style "le" (inclusive upper
/// bound) buckets plus one overflow bucket. Bucket boundaries are fixed at
/// registration; recording is a lock-free relaxed add.
class Histogram {
 public:
  /// `bounds` must be strictly ascending; throws ContractError otherwise.
  explicit Histogram(std::vector<double> bounds);

  void record(double v) noexcept {
    if (metrics_enabled()) record_unchecked(v);
  }
  void record_unchecked(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// One count per bound, plus a trailing overflow bucket.
  std::vector<u64> bucket_counts() const;
  u64 count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Interpolated quantile estimate (see histogram_quantile below).
  double quantile(double q) const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<u64>> buckets_;  // bounds_.size() + 1, fixed size
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Prometheus-style interpolated quantile from "le" buckets: find the
/// bucket holding rank q*count, interpolate linearly inside it (the first
/// bucket's lower edge is min(0, bound)). Returns NaN for an empty
/// histogram; samples landing in the +Inf overflow bucket clamp the
/// estimate to the last finite bound. `buckets` must be per-bucket counts
/// (bounds.size() + 1 entries, NOT cumulative).
double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<u64>& buckets, double q);

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one metric, for export.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  u64 count = 0;                ///< counter value / histogram sample count
  double value = 0.0;           ///< gauge value / histogram sample sum
  std::vector<double> bounds;   ///< histogram only
  std::vector<u64> buckets;     ///< histogram only (bounds + overflow)
};

/// Process-wide registry. Metric objects have stable addresses for the
/// lifetime of the process, so call sites may cache references.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Returns the existing histogram if `name` was registered before; the
  /// first registration fixes the bucket bounds.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Sorted-by-name copy of every registered metric.
  std::vector<MetricSnapshot> snapshot() const;

  /// "name value" lines, aligned, histograms expanded per bucket.
  std::string to_text() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

  /// OpenMetrics / Prometheus text exposition: sanitized `prcost_`-prefixed
  /// names, `# HELP`/`# TYPE` per family, `_total` counter samples,
  /// cumulative `_bucket{le="..."}` histogram series, `# EOF` terminator.
  std::string to_openmetrics() const;

  /// Zero every metric (registrations survive). Intended for tests.
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthand for Registry::instance().
inline Registry& registry() { return Registry::instance(); }

/// OpenMetrics label-value escaping: backslash, double quote, and newline
/// become \\, \", and \n.
std::string openmetrics_escape_label(std::string_view value);

/// Sanitize a dotted internal metric name into a legal exposition name:
/// [a-zA-Z0-9_:] pass through, everything else becomes '_', and the
/// result is prefixed with "prcost_".
std::string openmetrics_name(std::string_view name);

/// Point-in-time capture of the whole registry, diffable against a later
/// capture for interval deltas (the future serve loop scrapes these; tests
/// use them to assert per-request attribution against global counters).
struct Snapshot {
  std::vector<MetricSnapshot> metrics;  ///< sorted by name

  static Snapshot capture();
  const MetricSnapshot* find(std::string_view name) const noexcept;
  /// Counter value by name; 0 when absent or not a counter.
  u64 counter(std::string_view name) const noexcept;
};

/// after - before: counter values and histogram counts/sums/buckets
/// subtract (clamped at zero in case of an interleaved reset); gauges keep
/// the `after` value. Metrics absent from `after` are dropped; metrics new
/// in `after` are kept whole.
Snapshot snapshot_diff(const Snapshot& before, const Snapshot& after);

}  // namespace prcost::obs

#if defined(PRCOST_NO_OBS)

#define PRCOST_COUNT(name) ((void)0)
#define PRCOST_COUNT_N(name, delta) ((void)(delta))
#define PRCOST_GAUGE_SET(name, v) ((void)(v))
#define PRCOST_HIST(name, v, ...) ((void)(v))

#else

/// Count one event. Disabled cost: one relaxed atomic load.
#define PRCOST_COUNT(name) PRCOST_COUNT_N(name, 1)

/// Count `delta` events at once (batch local tallies from hot loops).
#define PRCOST_COUNT_N(name, delta)                                          \
  do {                                                                       \
    if (::prcost::obs::metrics_enabled()) {                                  \
      static ::prcost::obs::Counter& prcost_obs_counter_ =                   \
          ::prcost::obs::registry().counter(name);                           \
      prcost_obs_counter_.add_unchecked(static_cast<::prcost::u64>(delta));  \
    }                                                                        \
  } while (0)

/// Set a gauge to `v`.
#define PRCOST_GAUGE_SET(name, v)                                            \
  do {                                                                       \
    if (::prcost::obs::metrics_enabled()) {                                  \
      static ::prcost::obs::Gauge& prcost_obs_gauge_ =                       \
          ::prcost::obs::registry().gauge(name);                             \
      prcost_obs_gauge_.set_unchecked(static_cast<double>(v));               \
    }                                                                        \
  } while (0)

/// Record `v` into a histogram with upper bounds `...` (fixed at first hit).
#define PRCOST_HIST(name, v, ...)                                            \
  do {                                                                       \
    if (::prcost::obs::metrics_enabled()) {                                  \
      static ::prcost::obs::Histogram& prcost_obs_hist_ =                    \
          ::prcost::obs::registry().histogram(name,                          \
                                              std::vector<double>{           \
                                                  __VA_ARGS__});             \
      prcost_obs_hist_.record_unchecked(static_cast<double>(v));             \
    }                                                                        \
  } while (0)

#endif  // PRCOST_NO_OBS
