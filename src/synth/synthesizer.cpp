#include "synth/synthesizer.hpp"

#include "obs/obs.hpp"
#include "synth/passes.hpp"
#include "util/log.hpp"

namespace prcost {

SynthesisResult synthesize(Netlist design, const SynthOptions& options) {
  PRCOST_TRACE_SPAN("synthesis");
  PRCOST_COUNT("synth.runs");
  u64 optimized = options.implementation_level
                      ? run_implementation_passes(design)
                      : run_synthesis_passes(design);
  const MapStats map_stats = map_netlist(design, options.family);
  // Mapping can expose more dead logic (e.g. fused multiplier operands).
  optimized += options.implementation_level
                   ? run_implementation_passes(design)
                   : run_synthesis_passes(design);
  const SynthesisReport report = report_for(design, options.family, [&] {
    // Re-derive pairing after the post-map cleanup.
    MapStats refreshed = map_stats;
    refreshed.full_pairs = 0;
    for (const CellId id : design.live_cells()) {
      const Cell& ff = design.cell(id);
      if (ff.kind != CellKind::kFf) continue;
      const NetId d = ff.inputs[0];
      if (d == kNoNet) continue;
      const CellId driver = design.net(d).driver;
      if (driver == kNoCell) continue;
      if (design.cell(driver).kind == CellKind::kLut &&
          design.net(d).sinks.size() == 1) {
        ++refreshed.full_pairs;
      }
    }
    return refreshed;
  }());
  log_debug("synthesize ", design.name(), ": ", report.slice_luts, " LUTs, ",
            report.slice_ffs, " FFs, ", report.lut_ff_pairs, " pairs, ",
            report.dsps, " DSPs, ", report.brams, " BRAMs (", optimized,
            " cells optimized)");
  return SynthesisResult{std::move(design), report, map_stats, optimized};
}

}  // namespace prcost
