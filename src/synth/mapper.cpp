#include "synth/mapper.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "util/error.hpp"

namespace prcost {

DspArch dsp_arch(Family family) {
  switch (family) {
    case Family::kVirtex4: return DspArch{18, 18, false};
    case Family::kVirtex5: return DspArch{25, 18, false};
    case Family::kVirtex6: return DspArch{25, 18, true};
    case Family::kSeries7: return DspArch{25, 18, true};
    case Family::kSpartan6: return DspArch{18, 18, true};  // DSP48A1 pre-adder
  }
  throw ContractError{"dsp_arch: unknown family"};
}

u64 dsp_count_for_mul(u64 a_width, u64 b_width, const DspArch& arch) {
  if (a_width == 0 || b_width == 0) {
    throw ContractError{"dsp_count_for_mul: zero operand width"};
  }
  // Orient the wider operand onto the wider DSP port, then tile.
  const u64 wide = std::max(a_width, b_width);
  const u64 narrow_w = std::min(a_width, b_width);
  const u64 port_wide = std::max(arch.a_width, arch.b_width);
  const u64 port_narrow = std::min(arch.a_width, arch.b_width);
  return ceil_div(wide, port_wide) * ceil_div(narrow_w, port_narrow);
}

BramCount bram_count_for_ram(u64 depth, u64 width) {
  if (depth == 0 || width == 0) {
    throw ContractError{"bram_count_for_ram: zero-sized RAM"};
  }
  const u64 bits = checked_mul(depth, width);
  // <= 16Kb fits one 18Kb primitive (leaving margin for parity/waste).
  if (bits <= 16 * 1024 && width <= 36) return BramCount{0, 1};
  // Otherwise tile 36Kb primitives: depth slices of 1024 x up-to-36 bits
  // (the widest natural aspect); wide shallow RAMs tile by width instead.
  const u64 by_depth = ceil_div(depth, 1024);
  const u64 by_width = ceil_div(width, 36);
  return BramCount{by_depth * by_width, 0};
}

namespace {

/// Fuse kMul pairs that share the same B-operand nets when the DSP has a
/// pre-adder: (x1 * c) + (x2 * c) == (x1 + x2) * c in one DSP48E1.
u64 fuse_preadder_pairs(Netlist& nl) {
  // Group generic multipliers by their B-input net list (param1 = b width;
  // the last param1 inputs are the B bus).
  std::map<std::vector<u32>, std::vector<CellId>> by_b_bus;
  for (const CellId id : nl.live_cells()) {
    const Cell& cell = nl.cell(id);
    if (cell.kind != CellKind::kMul) continue;
    const auto b_width = static_cast<std::size_t>(cell.param1);
    if (cell.inputs.size() < b_width) continue;
    std::vector<u32> key;
    key.reserve(b_width);
    for (std::size_t i = cell.inputs.size() - b_width; i < cell.inputs.size();
         ++i) {
      key.push_back(index(cell.inputs[i]));
    }
    by_b_bus[std::move(key)].push_back(id);
  }

  u64 fused = 0;
  for (auto& [key, group] : by_b_bus) {
    // Fuse consecutive pairs within each coefficient-sharing group.
    for (std::size_t i = 0; i + 1 < group.size(); i += 2) {
      const CellId keep = group[i];
      const CellId absorbed = group[i + 1];
      const Cell& k = nl.cell(keep);
      const Cell& a = nl.cell(absorbed);
      if (k.param0 != a.param0 || k.param1 != a.param1) continue;
      // The kept cell now computes the pre-added product; the absorbed
      // cell's product nets alias the kept cell's.
      const auto outs = a.outputs;
      const auto kept_outs = k.outputs;
      for (std::size_t bit = 0; bit < outs.size() && bit < kept_outs.size();
           ++bit) {
        nl.replace_net(outs[bit], kept_outs[bit]);
      }
      nl.kill_cell(absorbed);
      nl.cell_mut(keep).param0 |= 1ull << 63;  // mark: pre-adder in use
      ++fused;
    }
  }
  return fused;
}

}  // namespace

MapStats map_netlist(Netlist& nl, Family family) {
  MapStats stats;
  const DspArch arch = dsp_arch(family);

  if (arch.has_preadder) {
    stats.muls_fused = fuse_preadder_pairs(nl);
  }

  // Expand multipliers to DSP48 primitives. The first primitive reuses the
  // macro cell (kind change in place keeps connectivity); extra tiles are
  // added as sibling cells sharing the inputs.
  for (const CellId id : nl.live_cells()) {
    Cell& cell = nl.cell_mut(id);
    if (cell.kind != CellKind::kMul && cell.kind != CellKind::kMulAcc) {
      continue;
    }
    const bool preadded = (cell.param0 & (1ull << 63)) != 0;
    const u64 a_width = cell.param0 & ~(1ull << 63);
    const u64 b_width = cell.param1;
    const u64 count = dsp_count_for_mul(a_width, b_width, arch);
    const std::vector<NetId> shared_inputs = cell.inputs;
    // Copy the name before add_cell: growing the cell vector invalidates
    // `cell` (and any other reference into it).
    const std::string base_name = cell.name;
    cell.kind = CellKind::kDsp48;
    cell.param0 = preadded ? 2 : 1;  // fused op count
    ++stats.muls_mapped;
    stats.dsps_emitted += count;
    for (u64 extra = 1; extra < count; ++extra) {
      nl.add_cell(CellKind::kDsp48, base_name + "_t" + std::to_string(extra),
                  shared_inputs, 1, 1);
    }
  }

  // Expand RAM macros to BRAM primitives.
  for (const CellId id : nl.live_cells()) {
    Cell& cell = nl.cell_mut(id);
    if (cell.kind != CellKind::kRam) continue;
    const u64 depth = cell.param0;
    const u64 width = cell.param1;
    const BramCount count = bram_count_for_ram(depth, width);
    const std::vector<NetId> shared_inputs = cell.inputs;
    ++stats.rams_mapped;
    stats.bram36_emitted += count.bram36;
    stats.bram18_emitted += count.bram18;
    if (count.bram18 > 0) {
      cell.kind = CellKind::kBram18;
    } else {
      cell.kind = CellKind::kBram36;
    }
    const u64 extras = (count.bram36 > 0 ? count.bram36 : count.bram18) - 1;
    const CellKind mapped_kind = cell.kind;
    const std::string base_name = cell.name;  // add_cell invalidates `cell`
    for (u64 extra = 0; extra < extras; ++extra) {
      nl.add_cell(mapped_kind, base_name + "_t" + std::to_string(extra),
                  shared_inputs, 1, depth, width);
    }
  }

  // LUT-FF pairing: a pair is "full" when an FF's D input is driven by a
  // LUT whose only sink is that FF (XST's packing heuristic).
  for (const CellId id : nl.live_cells()) {
    const Cell& ff = nl.cell(id);
    if (ff.kind != CellKind::kFf) continue;
    const NetId d = ff.inputs[0];
    if (d == kNoNet) continue;
    const CellId driver = nl.net(d).driver;
    if (driver == kNoCell) continue;
    const Cell& drv = nl.cell(driver);
    if (drv.kind == CellKind::kLut && nl.net(d).sinks.size() == 1) {
      ++stats.full_pairs;
    }
  }

  nl.validate();
  return stats;
}

SynthesisReport report_for(const Netlist& nl, Family family,
                           const MapStats& stats) {
  const NetlistStats counts = nl.stats();
  SynthesisReport report;
  report.module_name = nl.name();
  report.family = family;
  report.slice_luts = counts.luts;
  report.slice_ffs = counts.ffs;
  report.lut_ff_pairs = counts.luts + counts.ffs - stats.full_pairs;
  report.dsps = counts.dsp48s;
  // BRAM_req is reported in 36Kb-equivalents: two 18Kb halves share one
  // 36Kb block.
  report.brams = counts.bram36s + ceil_div(counts.bram18s, 2);
  report.bonded_iobs = counts.inputs + counts.outputs;
  if (!report.consistent()) {
    throw ContractError{"report_for: inconsistent LUT/FF pairing"};
  }
  return report;
}

}  // namespace prcost
