#include "synth/report.hpp"

#include <optional>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace prcost {
namespace {

/// Numeric report fields surface the offending key alongside the bad
/// token, so a corrupt line is actionable from the error alone.
u64 parse_count_field(const std::string& key, std::string_view value) {
  try {
    return parse_u64(value);
  } catch (const ParseError& e) {
    throw ParseError{"parse_report: field '" + key + "': " + e.what()};
  }
}

}  // namespace

std::string report_to_text(const SynthesisReport& report) {
  std::ostringstream os;
  os << "Release 12.4 - xst (prcost synthesis simulator)\n"
     << "Module Name                        : " << report.module_name << "\n"
     << "Target Family                      : " << family_name(report.family)
     << "\n"
     << "Device utilization summary:\n"
     << " Number of Slice LUTs              : " << report.slice_luts << "\n"
     << " Number of Slice Registers         : " << report.slice_ffs << "\n"
     << " Number of LUT Flip Flop pairs used: " << report.lut_ff_pairs << "\n"
     << " Number of DSP48s                  : " << report.dsps << "\n"
     << " Number of Block RAM/FIFO          : " << report.brams << "\n"
     << " Number of bonded IOBs             : " << report.bonded_iobs << "\n";
  return os.str();
}

SynthesisReport parse_report(std::string_view text) {
  SynthesisReport report;
  std::optional<u64> luts, ffs, pairs, dsps, brams;
  bool have_module = false;
  for (const auto& raw_line : split(text, '\n')) {
    const std::string_view line = trim(raw_line);
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string key = to_lower(trim(line.substr(0, colon)));
    const std::string_view value = trim(line.substr(colon + 1));
    if (key == "module name") {
      report.module_name = std::string{value};
      have_module = true;
    } else if (key == "target family") {
      try {
        report.family = parse_family(value);
      } catch (const Error&) {
        // Report text is external input: a bad family name is a parse
        // failure, not a caller contract violation.
        throw ParseError{"parse_report: field 'target family': unknown family '" +
                         std::string{value} + "'"};
      }
    } else if (key == "number of slice luts") {
      luts = parse_count_field(key, value);
    } else if (key == "number of slice registers") {
      ffs = parse_count_field(key, value);
    } else if (key == "number of lut flip flop pairs used") {
      pairs = parse_count_field(key, value);
    } else if (key == "number of dsp48s") {
      dsps = parse_count_field(key, value);
    } else if (key == "number of block ram/fifo") {
      brams = parse_count_field(key, value);
    } else if (key == "number of bonded iobs") {
      report.bonded_iobs = parse_count_field(key, value);
    }
  }
  if (!have_module || !luts || !ffs || !pairs || !dsps || !brams) {
    throw ParseError{"parse_report: missing required report fields"};
  }
  report.slice_luts = *luts;
  report.slice_ffs = *ffs;
  report.lut_ff_pairs = *pairs;
  report.dsps = *dsps;
  report.brams = *brams;
  return report;
}

}  // namespace prcost
