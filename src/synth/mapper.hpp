// Technology mapping: generic macro cells -> family primitives, plus
// LUT-FF slice pairing. Together with the passes this completes the
// XST-simulator substrate that produces the SynthesisReport the paper's
// cost models consume.
#pragma once

#include "device/family_traits.hpp"
#include "netlist/netlist.hpp"
#include "synth/report.hpp"

namespace prcost {

/// Per-family DSP capability used during mapping.
struct DspArch {
  u32 a_width;       ///< max A operand width
  u32 b_width;       ///< max B operand width
  bool has_preadder; ///< DSP48E1-style pre-adder (Virtex-6, 7-series)
};

/// DSP architecture for `family` (Virtex-4: 18x18; Virtex-5: 25x18;
/// Virtex-6 / 7-series: 25x18 with pre-adder).
DspArch dsp_arch(Family family);

/// Result of mapping: how many primitives each macro kind expanded to.
struct MapStats {
  u64 muls_mapped = 0;       ///< generic multipliers consumed
  u64 muls_fused = 0;        ///< multiplier pairs fused via pre-adder
  u64 dsps_emitted = 0;      ///< DSP48 primitives created
  u64 rams_mapped = 0;       ///< generic RAM macros consumed
  u64 bram36_emitted = 0;    ///< 36Kb primitives created
  u64 bram18_emitted = 0;    ///< 18Kb primitives created
  u64 full_pairs = 0;        ///< LUT-FF pairs with both halves used
};

/// Map `nl` in place for `family`:
///  1. fuse multiplier pairs sharing a coefficient bus when the family DSP
///     has a pre-adder (symmetric FIR taps: the reason the paper's FIR
///     needs 32 DSPs on Virtex-5 but 27 on Virtex-6),
///  2. expand kMul/kMulAcc to kDsp48 primitives (tiling wide operands),
///  3. expand kRam macros to kBram36/kBram18 primitives,
///  4. compute LUT-FF pairing.
MapStats map_netlist(Netlist& nl, Family family);

/// Count how many DSP48 primitives one (a_width x b_width) multiplier
/// needs on `arch` (operand tiling).
u64 dsp_count_for_mul(u64 a_width, u64 b_width, const DspArch& arch);

/// How many BRAM primitives a depth x width RAM macro needs; result in
/// {bram36, bram18} counts.
struct BramCount {
  u64 bram36 = 0;
  u64 bram18 = 0;
};
BramCount bram_count_for_ram(u64 depth, u64 width);

/// Derive the synthesis report for a mapped netlist (counts live cells;
/// `full_pairs` from MapStats refines LUT_FF_req).
SynthesisReport report_for(const Netlist& nl, Family family,
                           const MapStats& stats);

}  // namespace prcost
