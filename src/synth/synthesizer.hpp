// Top-level synthesis entry point: the prcost stand-in for "run XST and
// read the .srp report".
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "synth/mapper.hpp"
#include "synth/report.hpp"

namespace prcost {

/// Synthesis options.
struct SynthOptions {
  Family family = Family::kVirtex5;
  /// Run the MAP/PAR-level aggressive passes too. XST itself does not;
  /// src/par enables this to model post-implementation resource counts
  /// (the paper's Table VI).
  bool implementation_level = false;
};

/// Everything synthesize() produces.
struct SynthesisResult {
  Netlist netlist;         ///< optimized, technology-mapped netlist
  SynthesisReport report;  ///< the Table I input parameters
  MapStats map_stats;      ///< primitive expansion details
  u64 cells_optimized = 0; ///< pass effectiveness (cells removed/changed)
};

/// Optimize and map `design` for the target family, producing the
/// synthesis report the cost models consume. The input netlist is taken by
/// value (synthesis rewrites it).
SynthesisResult synthesize(Netlist design, const SynthOptions& options);

}  // namespace prcost
