#include "synth/passes.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "netlist/logic.hpp"

namespace prcost {
namespace {

/// Is this cell a pure constant driver?
bool is_const(const Cell& cell) {
  return cell.kind == CellKind::kConst0 || cell.kind == CellKind::kConst1;
}

/// Cells that must never be dead-code-eliminated.
bool keep_alive(const Cell& cell) {
  switch (cell.kind) {
    case CellKind::kOutput:
    case CellKind::kInput:
    case CellKind::kRam:
    case CellKind::kBram36:
    case CellKind::kBram18:
    case CellKind::kDsp48:
    case CellKind::kMul:
    case CellKind::kMulAcc:
    case CellKind::kConst0:
    case CellKind::kConst1:
      return true;
    default:
      return false;
  }
}

/// Remove constant inputs from a LUT by specializing its truth table.
/// Returns true if the cell changed.
bool specialize_lut(Netlist& nl, CellId id) {
  Cell& cell = nl.cell_mut(id);
  // Find a constant input (if any).
  for (u32 pin = 0; pin < cell.inputs.size(); ++pin) {
    const NetId in = cell.inputs[pin];
    if (in == kNoNet) continue;
    const CellId driver = nl.net(in).driver;
    if (driver == kNoCell) continue;
    const Cell& driver_cell = nl.cell(driver);
    if (!is_const(driver_cell)) continue;
    const bool value = driver_cell.kind == CellKind::kConst1;

    // Build the specialized truth table over the remaining k-1 inputs.
    const u32 k = narrow<u32>(cell.inputs.size());
    u64 new_table = 0;
    for (u32 idx = 0; idx < (1u << (k - 1)); ++idx) {
      // Re-insert the fixed bit at position `pin`.
      const u32 low_mask = (1u << pin) - 1;
      const u32 full = (idx & low_mask) |
                       ((value ? 1u : 0u) << pin) |
                       ((idx & ~low_mask) << 1);
      if (tt::eval(cell.param0, full)) new_table |= 1ull << idx;
    }
    // Detach the constant pin.
    nl.rewire_input(id, pin, kNoNet);
    auto& inputs = nl.cell_mut(id).inputs;
    inputs.erase(inputs.begin() + pin);
    nl.cell_mut(id).param0 = new_table;
    return true;
  }
  return false;
}

}  // namespace

u64 propagate_constants(Netlist& nl) {
  u64 changed = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const CellId id : nl.live_cells()) {
      const Cell& cell = nl.cell(id);
      if (cell.kind != CellKind::kLut) continue;
      if (!cell.inputs.empty()) {
        if (specialize_lut(nl, id)) {
          ++changed;
          progress = true;
        }
      }
      // A LUT whose truth table no longer depends on its inputs (all-zeros
      // or all-ones over the remaining arity) is a constant; so is one
      // with no inputs left.
      const Cell& after = nl.cell(id);
      if (after.kind == CellKind::kLut) {
        const u32 k = narrow<u32>(after.inputs.size());
        const u64 mask = k >= 6 ? ~u64{0} : (u64{1} << (u64{1} << k)) - 1;
        const u64 table = after.param0 & mask;
        if (table == 0 || table == mask) {
          nl.replace_net(after.outputs[0], nl.const_net(table != 0));
          nl.kill_cell(id);
          ++changed;
          progress = true;
          continue;
        }
      }
      // A 1-input LUT computing identity is a buffer: bypass it.
      if (after.kind == CellKind::kLut && after.inputs.size() == 1 &&
          after.param0 == tt::kBuf) {
        nl.replace_net(after.outputs[0], after.inputs[0]);
        nl.kill_cell(id);
        ++changed;
        progress = true;
      }
    }
  }
  return changed;
}

u64 eliminate_dead_cells(Netlist& nl) {
  u64 removed = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const CellId id : nl.live_cells()) {
      const Cell& cell = nl.cell(id);
      if (keep_alive(cell)) continue;
      const bool any_sink = std::any_of(
          cell.outputs.begin(), cell.outputs.end(),
          [&](NetId out) { return !nl.net(out).sinks.empty(); });
      if (!any_sink) {
        nl.kill_cell(id);
        ++removed;
        progress = true;
      }
    }
  }
  return removed;
}

u64 merge_duplicate_luts(Netlist& nl) {
  u64 merged = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    // Key: truth table + exact input net ids.
    std::unordered_map<std::string, CellId> seen;
    for (const CellId id : nl.live_cells()) {
      const Cell& cell = nl.cell(id);
      if (cell.kind != CellKind::kLut) continue;
      std::string key = std::to_string(cell.param0);
      for (const NetId in : cell.inputs) {
        key += ',';
        key += std::to_string(index(in));
      }
      const auto [it, inserted] = seen.emplace(std::move(key), id);
      if (!inserted) {
        nl.replace_net(cell.outputs[0], nl.cell(it->second).outputs[0]);
        nl.kill_cell(id);
        ++merged;
        progress = true;
      }
    }
  }
  return merged;
}

u64 absorb_ce_muxes(Netlist& nl) {
  u64 absorbed = 0;
  for (const CellId id : nl.live_cells()) {
    const Cell& cell = nl.cell(id);
    if (cell.kind != CellKind::kLut || cell.param0 != tt::kMux2 ||
        cell.inputs.size() != 3) {
      continue;
    }
    const NetId out = cell.outputs[0];
    const auto& sinks = nl.net(out).sinks;
    if (sinks.size() != 1) continue;
    const CellId ff_id = sinks[0];
    const Cell& ff = nl.cell(ff_id);
    if (ff.kind != CellKind::kFf) continue;
    // Feedback pattern: mux '0' leg (pin 1) is the FF's own Q.
    if (cell.inputs[1] != ff.outputs[0]) continue;
    const NetId data = cell.inputs[2];
    const NetId enable = cell.inputs[0];
    nl.rewire_input(ff_id, 0, data);
    // The FF keeps the enable as a real CE pin (input 1) so behaviour is
    // unchanged: q <= ce ? d : q, now without the mux LUT.
    nl.add_input_pin(ff_id, enable);
    nl.cell_mut(ff_id).param1 = 1;  // marks: CE-connected FF
    nl.kill_cell(id);
    ++absorbed;
  }
  return absorbed;
}

u64 fold_inverters(Netlist& nl) {
  u64 folded = 0;
  for (const CellId id : nl.live_cells()) {
    const Cell& inv = nl.cell(id);
    if (inv.kind != CellKind::kLut || inv.inputs.size() != 1 ||
        inv.param0 != tt::kNot) {
      continue;
    }
    const NetId out = inv.outputs[0];
    const auto sinks = nl.net(out).sinks;  // copy: we mutate below
    if (sinks.size() != 1) continue;
    const CellId sink_id = sinks[0];
    Cell& sink = nl.cell_mut(sink_id);
    if (sink.kind != CellKind::kLut || sink.inputs.size() >= 6) continue;
    // Rewrite sink truth table with that input inverted.
    u32 pin = 0;
    while (pin < sink.inputs.size() && sink.inputs[pin] != out) ++pin;
    if (pin == sink.inputs.size()) continue;
    const u32 k = narrow<u32>(sink.inputs.size());
    u64 new_table = 0;
    for (u32 idx = 0; idx < (1u << k); ++idx) {
      if (tt::eval(sink.param0, idx ^ (1u << pin))) new_table |= 1ull << idx;
    }
    sink.param0 = new_table;
    nl.rewire_input(sink_id, pin, inv.inputs[0]);
    nl.kill_cell(id);
    ++folded;
  }
  return folded;
}

u64 run_synthesis_passes(Netlist& nl) {
  u64 total = 0;
  u64 round = 1;
  while (round != 0) {
    round = propagate_constants(nl);
    round += absorb_ce_muxes(nl);
    round += eliminate_dead_cells(nl);
    total += round;
  }
  nl.validate();
  return total;
}

u64 run_implementation_passes(Netlist& nl) {
  u64 total = run_synthesis_passes(nl);
  u64 round = 1;
  while (round != 0) {
    round = merge_duplicate_luts(nl);
    round += fold_inverters(nl);
    round += propagate_constants(nl);
    round += eliminate_dead_cells(nl);
    total += round;
  }
  nl.validate();
  return total;
}

}  // namespace prcost
