// Netlist optimization passes.
//
// XST (synthesis) runs the lighter passes; ISE MAP/PAR (implementation)
// additionally runs the aggressive ones, which is why post-place-and-route
// resource counts in the paper's Table VI are lower than the synthesis
// report counts ("the Xilinx tools perform optimizations to reduce the
// PRMs resource requirements during place and route"). src/par composes
// the aggressive subset to reproduce that effect.
//
// Every pass returns the number of cells it removed/changed so callers can
// iterate to a fixpoint and report pass effectiveness.
#pragma once

#include "netlist/netlist.hpp"

namespace prcost {

/// Fold constant LUT inputs into the truth table; a LUT whose output
/// becomes constant is replaced by the constant driver. Returns LUTs
/// simplified or removed.
u64 propagate_constants(Netlist& nl);

/// Remove cells none of whose outputs reach a sink. Output ports, DSPs and
/// memories are retained (memories/DSPs hold architectural state; real
/// tools keep them unless explicitly trimmed). Returns cells removed.
u64 eliminate_dead_cells(Netlist& nl);

/// Merge structurally identical LUTs (same truth table and input nets).
/// Returns LUTs merged away. MAP-level optimization.
u64 merge_duplicate_luts(Netlist& nl);

/// Absorb clock-enable feedback muxes into FF CE pins: a kMux2-truth LUT
/// whose output feeds exactly one FF and whose '0' data leg is that FF's
/// own Q is deleted; the FF records a CE connection (param1 = 1) and reads
/// the mux's '1' leg directly. Mirrors slice-FF CE packing. Returns muxes
/// absorbed.
u64 absorb_ce_muxes(Netlist& nl);

/// Re-express single-sink inverter LUTs into their sink LUT's truth table
/// (input polarity folding). MAP-level optimization. Returns inverters
/// folded.
u64 fold_inverters(Netlist& nl);

/// Run the XST-level pass pipeline to fixpoint (const-prop, CE absorption,
/// dead-cell elimination). Returns total cells removed/changed.
u64 run_synthesis_passes(Netlist& nl);

/// Run the MAP/PAR-level pipeline to fixpoint (synthesis passes plus
/// duplicate-LUT merging and inverter folding). Returns total effect.
u64 run_implementation_passes(Netlist& nl);

}  // namespace prcost
