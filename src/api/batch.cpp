#include "api/batch.hpp"

#include <algorithm>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "api/deadline.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/lines.hpp"
#include "util/parallel.hpp"

namespace prcost::api {
namespace {

Json error_envelope(ErrorCode code, const std::string& message) {
  Json error = Json::object();
  error.set("code", std::string{error_code_name(code)}).set("message", message);
  Json envelope = Json::object();
  envelope.set("error", std::move(error));
  return envelope;
}

/// Copy "op" and "id" from the request into the envelope (when present)
/// so batch consumers can correlate out-of-band.
void echo_request_keys(const Json& request, Json& envelope) {
  Json tagged = Json::object();
  if (const Json* op = request.find("op")) {
    if (op->is_string()) tagged.set("op", *op);
  }
  if (const Json* id = request.find("id")) tagged.set("id", *id);
  for (const auto& [key, value] : envelope.as_object()) {
    tagged.set(key, value);
  }
  envelope = std::move(tagged);
}

Json dispatch_by_op(const Engine& engine, const Json& request) {
  const Json* op = request.find("op");
  if (op == nullptr) throw UsageError{"request needs an \"op\" member"};
  const std::string& name = op->as_string();
  if (name == "devices") return to_json(engine.list_devices());
  if (name == "synth") {
    return to_json(engine.synth(synth_request_from_json(request)));
  }
  if (name == "plan") {
    return to_json(engine.plan(plan_request_from_json(request)));
  }
  if (name == "bitstream") {
    return to_json(engine.bitstream(bitstream_request_from_json(request)));
  }
  if (name == "explore") {
    return to_json(engine.explore(explore_request_from_json(request)));
  }
  if (name == "rank") {
    return to_json(engine.rank(rank_request_from_json(request)));
  }
  if (name == "faults") {
    return to_json(engine.faults(faults_request_from_json(request)));
  }
  if (name == "optimize") {
    return to_json(engine.optimize(optimize_request_from_json(request)));
  }
  if (name == "schedule") {
    return to_json(engine.schedule(schedule_request_from_json(request)));
  }
  if (name == "ping") {
    // Health probe: answers without touching the evaluation path, so a
    // serve health check stays cheap even under load.
    Json result = Json::object();
    result.set("pong", true);
    return result;
  }
  if (name == "metrics") {
    // Live OpenMetrics scrape of the process-wide registry (the serve
    // observability endpoint; also usable from batch for a final dump).
    Json result = Json::object();
    result.set("openmetrics", engine.metrics().to_openmetrics());
    return result;
  }
  throw NotFoundError{"unknown op '" + name +
                      "' (known: devices synth plan bitstream explore rank "
                      "faults optimize schedule ping metrics)"};
}

/// Arm the request's "deadline_ms" budget (anchored at `arrival`) for the
/// duration of the dispatch. Outermost-wins: no-op when the caller already
/// opened a scope. Returns disengaged when the request carries no budget.
std::optional<DeadlineScope> arm_deadline(
    const Json& request, std::chrono::steady_clock::time_point arrival) {
  const Json* dl = request.is_object() ? request.find("deadline_ms") : nullptr;
  if (dl == nullptr) return std::nullopt;
  if (!dl->is_number() || dl->as_double() < 0) {
    throw UsageError{"deadline_ms must be a non-negative number"};
  }
  const auto budget = std::chrono::duration_cast<DeadlineClock::duration>(
      std::chrono::duration<double, std::milli>{dl->as_double()});
  return std::optional<DeadlineScope>{std::in_place, arrival + budget};
}

}  // namespace

Json dispatch_request(const Engine& engine, const Json& request) {
  Json envelope = Json::object();
  try {
    if (!request.is_object()) {
      throw UsageError{"request must be a JSON object"};
    }
    const auto scope = arm_deadline(request, DeadlineClock::now());
    check_deadline("admission");
    Json result = dispatch_by_op(engine, request);
    envelope.set("result", std::move(result));
  } catch (const Error& error) {
    envelope = error_envelope(error.code(), error.what());
  } catch (const std::exception& error) {
    envelope = error_envelope(ErrorCode::kInternal, error.what());
  }
  if (request.is_object()) echo_request_keys(request, envelope);
  return envelope;
}

Json dispatch_line(const Engine& engine, std::string_view line) {
  return dispatch_line_at(engine, line, DeadlineClock::now());
}

Json dispatch_line_at(const Engine& engine, std::string_view line,
                      std::chrono::steady_clock::time_point arrival) {
  Json request;
  try {
    request = Json::parse(line);
  } catch (const ParseError& error) {
    return error_envelope(ErrorCode::kParse, error.what());
  }
  Json envelope = Json::object();
  try {
    if (!request.is_object()) {
      throw UsageError{"request must be a JSON object"};
    }
    // Anchor the budget at arrival: time spent queued behind other
    // requests counts, so an overloaded server answers "deadline" instead
    // of doing work nobody is waiting for.
    const auto scope = arm_deadline(request, arrival);
    check_deadline("admission");
    Json result = dispatch_by_op(engine, request);
    envelope.set("result", std::move(result));
  } catch (const Error& error) {
    envelope = error_envelope(error.code(), error.what());
  } catch (const std::exception& error) {
    envelope = error_envelope(ErrorCode::kInternal, error.what());
  }
  if (request.is_object()) echo_request_keys(request, envelope);
  return envelope;
}

BatchStats run_batch(const Engine& engine, std::istream& in, std::ostream& out,
                     const BatchOptions& options) {
  const std::size_t workers =
      options.workers != 0 ? options.workers : engine.options().workers;
  const std::size_t width = workers != 0 ? workers : parallel_worker_count();
  const std::size_t window =
      options.window != 0 ? options.window
                          : std::max<std::size_t>(64, width * 16);

  BatchStats stats;
  std::vector<std::string> lines;
  std::vector<std::string> responses;
  std::vector<unsigned char> ok;  // not vector<bool>: workers write
                                  // distinct indices concurrently
  lines.reserve(window);

  // Dispatch one window over the pool and emit its responses in input
  // order. Windows bound memory: the stream is never slurped whole.
  const auto flush = [&] {
    if (lines.empty()) return;
    responses.assign(lines.size(), {});
    ok.assign(lines.size(), 0);
    parallel_for(
        lines.size(),
        [&](std::size_t i) {
          const Json envelope = dispatch_line(engine, lines[i]);
          ok[i] = envelope.find("error") == nullptr;
          responses[i] = envelope.dump();
        },
        workers);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      out << responses[i] << '\n';
      if (ok[i]) {
        ++stats.succeeded;
      } else {
        ++stats.failed;
      }
    }
    stats.requests += lines.size();
    lines.clear();
    // Responses leave the process as soon as their window completes, so a
    // pipe producer can overlap with dispatch.
    out.flush();
  };

  // Same framing the serve event loop uses on its sockets: chunks in,
  // getline-equivalent lines out (a trailing unterminated chunk is still
  // one last line).
  LineSplitter splitter;
  char chunk[64 * 1024];
  while (in.read(chunk, sizeof chunk) || in.gcount() > 0) {
    splitter.append(
        std::string_view{chunk, static_cast<std::size_t>(in.gcount())});
    while (auto line = splitter.next_line()) {
      lines.push_back(std::move(*line));
      if (lines.size() >= window) flush();
    }
  }
  std::string tail = splitter.take_tail();
  if (!tail.empty()) lines.push_back(std::move(tail));
  flush();
  return stats;
}

}  // namespace prcost::api
