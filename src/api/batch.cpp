#include "api/batch.hpp"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace prcost::api {
namespace {

Json error_envelope(ErrorCode code, const std::string& message) {
  Json error = Json::object();
  error.set("code", std::string{error_code_name(code)}).set("message", message);
  Json envelope = Json::object();
  envelope.set("error", std::move(error));
  return envelope;
}

/// Copy "op" and "id" from the request into the envelope (when present)
/// so batch consumers can correlate out-of-band.
void echo_request_keys(const Json& request, Json& envelope) {
  Json tagged = Json::object();
  if (const Json* op = request.find("op")) {
    if (op->is_string()) tagged.set("op", *op);
  }
  if (const Json* id = request.find("id")) tagged.set("id", *id);
  for (const auto& [key, value] : envelope.as_object()) {
    tagged.set(key, value);
  }
  envelope = std::move(tagged);
}

Json dispatch_by_op(const Engine& engine, const Json& request) {
  const Json* op = request.find("op");
  if (op == nullptr) throw UsageError{"request needs an \"op\" member"};
  const std::string& name = op->as_string();
  if (name == "devices") return to_json(engine.list_devices());
  if (name == "synth") {
    return to_json(engine.synth(synth_request_from_json(request)));
  }
  if (name == "plan") {
    return to_json(engine.plan(plan_request_from_json(request)));
  }
  if (name == "bitstream") {
    return to_json(engine.bitstream(bitstream_request_from_json(request)));
  }
  if (name == "explore") {
    return to_json(engine.explore(explore_request_from_json(request)));
  }
  if (name == "rank") {
    return to_json(engine.rank(rank_request_from_json(request)));
  }
  if (name == "faults") {
    return to_json(engine.faults(faults_request_from_json(request)));
  }
  if (name == "optimize") {
    return to_json(engine.optimize(optimize_request_from_json(request)));
  }
  throw NotFoundError{
      "unknown op '" + name +
      "' (known: devices synth plan bitstream explore rank faults optimize)"};
}

}  // namespace

Json dispatch_request(const Engine& engine, const Json& request) {
  Json envelope = Json::object();
  try {
    if (!request.is_object()) {
      throw UsageError{"request must be a JSON object"};
    }
    Json result = dispatch_by_op(engine, request);
    envelope.set("result", std::move(result));
  } catch (const Error& error) {
    envelope = error_envelope(error.code(), error.what());
  } catch (const std::exception& error) {
    envelope = error_envelope(ErrorCode::kInternal, error.what());
  }
  if (request.is_object()) echo_request_keys(request, envelope);
  return envelope;
}

Json dispatch_line(const Engine& engine, std::string_view line) {
  Json request;
  try {
    request = Json::parse(line);
  } catch (const ParseError& error) {
    return error_envelope(ErrorCode::kParse, error.what());
  }
  return dispatch_request(engine, request);
}

BatchStats run_batch(const Engine& engine, std::istream& in, std::ostream& out,
                     const BatchOptions& options) {
  // Slurp the stream first: responses must come back in input order, and
  // reading up front lets the dispatch fan out over all lines at once.
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(std::move(line));
  }

  std::vector<std::string> responses(lines.size());
  // Not vector<bool>: workers write distinct indices concurrently, and
  // vector<bool> packs adjacent indices into one shared byte.
  std::vector<unsigned char> ok(lines.size(), 0);
  parallel_for(
      lines.size(),
      [&](std::size_t i) {
        const Json envelope = dispatch_line(engine, lines[i]);
        ok[i] = envelope.find("error") == nullptr;
        responses[i] = envelope.dump();
      },
      options.workers != 0 ? options.workers : engine.options().workers);

  BatchStats stats;
  stats.requests = lines.size();
  for (std::size_t i = 0; i < responses.size(); ++i) {
    out << responses[i] << '\n';
    if (ok[i]) {
      ++stats.succeeded;
    } else {
      ++stats.failed;
    }
  }
  return stats;
}

}  // namespace prcost::api
