#include "api/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <sstream>
#include <tuple>
#include <utility>

#include "api/deadline.hpp"
#include "bitstream/bitstream_cache.hpp"
#include "bitstream/generator.hpp"
#include "cost/floorplan.hpp"
#include "cost/plan_cache.hpp"
#include "cost/shaped_prr.hpp"
#include "multitask/simulator.hpp"
#include "multitask/workload.hpp"
#include "sched/generators.hpp"
#include "sched/scheduler.hpp"
#include "netlist/serialize.hpp"
#include "opt/optimizer.hpp"
#include "par/par.hpp"
#include "reconfig/faults.hpp"
#include "synth/synthesizer.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace prcost::api {
namespace {

std::string slurp(const std::string& path, const char* what) {
  std::ifstream in{path};
  if (!in) throw IoError{std::string{"cannot open "} + what + " file"};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Model input plus, when we synthesized it ourselves, the mapped netlist
/// (used by plan's PAR cross-check).
struct PlanInput {
  PrmRequirements req;
  std::optional<SynthesisResult> synth;
};

/// Process-wide memo of built-in PRM synthesis requirements. Synthesis of
/// a named generator is a pure function of (name, family), yet every
/// plan/bitstream/explore request used to re-run it — tens of thousands of
/// heap allocations per request even when the plan cache already had the
/// answer. The warm lookup is a shared-lock linear scan over a handful of
/// entries comparing string content; it allocates nothing, which the
/// zero-alloc request test depends on.
PrmRequirements builtin_requirements(const std::string& name, Family family) {
  struct Entry {
    Family family;
    std::string name;
    PrmRequirements req;
  };
  static std::shared_mutex mu;
  static std::vector<Entry> entries;
  {
    const std::shared_lock lock{mu};
    for (const Entry& entry : entries) {
      if (entry.family == family && entry.name == name) return entry.req;
    }
  }
  // Miss: synthesize outside any lock (throws NotFoundError for unknown
  // names before anything is cached), then publish. Duplicated concurrent
  // misses insert duplicate-but-identical entries; the scan still returns
  // the right requirements.
  const SynthesisResult result =
      synthesize(make_builtin_prm(name), SynthOptions{family});
  const PrmRequirements req = PrmRequirements::from_report(result.report);
  const std::unique_lock lock{mu};
  entries.push_back(Entry{family, name, req});
  return req;
}

/// `need_synth`: the caller wants the mapped netlist (plan --cross-check
/// runs PAR on it); otherwise builtin sources resolve through the
/// requirements memo and skip synthesis entirely on the warm path.
PlanInput load_plan_input(const PrmSource& source, Family family,
                          bool need_synth = false) {
  source.validate();
  if (!source.netlist_path.empty()) {
    SynthesisResult result =
        synthesize(netlist_from_text(slurp(source.netlist_path, "netlist")),
                   SynthOptions{family});
    PrmRequirements req = PrmRequirements::from_report(result.report);
    return PlanInput{req, std::move(result)};
  }
  if (!source.report_path.empty()) {
    return PlanInput{PrmRequirements::from_report(
                         parse_report(slurp(source.report_path, "report"))),
                     std::nullopt};
  }
  if (!need_synth) {
    return PlanInput{builtin_requirements(source.prm, family), std::nullopt};
  }
  SynthesisResult result =
      synthesize(make_builtin_prm(source.prm), SynthOptions{family});
  PrmRequirements req = PrmRequirements::from_report(result.report);
  return PlanInput{req, std::move(result)};
}

/// Generate the bitstream for `plan` and return its word count. Served
/// from the process-wide cache when enabled; otherwise generated into a
/// thread-local scratch buffer so repeated cross-checks allocate nothing.
u64 generated_word_count(const PrrPlan& plan, const Device& device) {
  if (bitstream_cache_enabled()) {
    return generate_bitstream_cached(plan, device.fabric.family())->size();
  }
  thread_local std::vector<u32> scratch;
  generate_bitstream_into(scratch, plan, device.fabric.family());
  return scratch.size();
}

/// Resolve each named built-in PRM for `family` into a PrmInfo table
/// (through the requirements memo: one synthesis per distinct name ever).
std::vector<PrmInfo> synthesize_prms(const std::vector<std::string>& names,
                                     Family family) {
  std::vector<PrmInfo> prms;
  prms.reserve(names.size());
  for (const std::string& name : names) {
    prms.push_back(PrmInfo{name, builtin_requirements(name, family), 0});
  }
  return prms;
}

}  // namespace

Engine::Engine() : Engine(Options{}) {}

Engine::Engine(const Options& options) : options_(options) {
  set_plan_cache_enabled(options_.plan_cache);
  set_bitstream_cache_enabled(options_.bitstream_cache);
  if (!options_.cache_dir.empty()) load_caches();
}

void Engine::load_caches() const {
  // Warm-start is best-effort by contract: a snapshot only pre-warms
  // memoization, so a missing, unreadable, or corrupt file degrades to
  // the ordinary cold start instead of failing the Engine.
  const std::filesystem::path dir{options_.cache_dir};
  const auto load = [](const char* name, auto loader, const std::string& path) {
    std::error_code ignored;
    if (!std::filesystem::exists(path, ignored)) return;
    try {
      loader(path);
    } catch (const Error& error) {
      PRCOST_COUNT("snapshot.load_failures");
      log_warn(name, " snapshot ignored: ", error.what());
    }
  };
  load("plan cache", plan_cache_load, (dir / "plan_cache.snap").string());
  load("bitstream cache", bitstream_cache_load,
       (dir / "bitstream_cache.snap").string());
}

void Engine::save_caches() const {
  if (options_.cache_dir.empty()) return;
  const std::filesystem::path dir{options_.cache_dir};
  std::error_code error;
  std::filesystem::create_directories(dir, error);
  if (error) {
    throw IoError{"cannot create cache dir '" + dir.string() +
                  "': " + error.message()};
  }
  plan_cache_save((dir / "plan_cache.snap").string());
  bitstream_cache_save((dir / "bitstream_cache.snap").string());
}

const Device& Engine::resolve_device(const std::string& name) const {
  if (name.empty()) throw UsageError{"request needs a device"};
  return devices().get(name);
}

std::size_t Engine::effective_workers(std::size_t requested) const {
  return requested != 0 ? requested : options_.workers;
}

SynthResponse Engine::synth(const SynthRequest& request) const {
  const obs::RequestScope scope{options_.collect_stats};
  if (request.source.prm.empty() && request.source.netlist_path.empty()) {
    throw UsageError{"synth needs a PRM"};
  }
  request.source.validate();
  const Netlist design =
      request.source.prm.empty()
          ? netlist_from_text(slurp(request.source.netlist_path, "netlist"))
          : make_builtin_prm(request.source.prm);
  SynthResponse response;
  response.report = synthesize(design, SynthOptions{request.family}).report;
  response.stats = scope.finish();
  return response;
}

PlanResponse Engine::plan(const PlanRequest& request) const {
  const obs::RequestScope scope{options_.collect_stats};
  const Device& device = resolve_device(request.device);
  PlanInput input = load_plan_input(request.source, device.fabric.family(),
                                    /*need_synth=*/request.cross_check);

  check_deadline("plan.input");
  SearchOptions options;
  options.objective = request.objective;
  const auto plan = find_prr(input.req, device.fabric, options);
  if (!plan) throw InfeasibleError{"no feasible PRR on " + device.name};
  check_deadline("plan.search");

  PlanResponse response;
  response.device = device.name;
  response.plan = *plan;

  if (request.cross_check) {
    // Full-flow cross-checks: place & route into the chosen PRR (when the
    // netlist came from our own synthesis) and a generated bitstream whose
    // byte size must match the model prediction.
    if (input.synth) {
      const ParResult par = place_and_route(std::move(input.synth->netlist),
                                            *plan, device.fabric, ParOptions{});
      ParCrossCheck check;
      check.routed = par.routed;
      check.failure_reason = par.failure_reason;
      check.placed_cells = par.placement.placed_cells;
      check.hpwl_initial = par.placement.hpwl_initial;
      check.hpwl_final = par.placement.hpwl_final;
      check.critical_path_ns = par.placement.critical_path_ns;
      response.par = check;
    }
    response.generated_bytes = generated_word_count(*plan, device) *
                               device.fabric.traits().bytes_word;
  }

  if (request.shaped) {
    const auto shaped = find_l_shaped_prr(input.req, device.fabric);
    ShapedAlternative alt;
    if (shaped && shaped->shape.size() < plan->organization.size()) {
      alt.beats_rectangle = true;
      alt.cells = shaped->shape.size();
      alt.bitstream_bytes = shaped->bitstream.total_bytes;
      alt.cells_saved = plan->organization.size() - shaped->shape.size();
    }
    response.shaped = alt;
  }
  response.stats = scope.finish();
  return response;
}

BitstreamResponse Engine::bitstream(const BitstreamRequest& request) const {
  const obs::RequestScope scope{options_.collect_stats};
  const Device& device = resolve_device(request.device);
  const PrmRequirements req =
      load_plan_input(request.source, device.fabric.family()).req;
  check_deadline("bitstream.input");
  const auto plan = find_prr(req, device.fabric);
  if (!plan) throw InfeasibleError{"no feasible PRR on " + device.name};
  check_deadline("bitstream.search");

  BitstreamResponse response;
  response.device = device.name;
  response.family = device.fabric.family();
  response.plan = *plan;
  if (bitstream_cache_enabled()) {
    // Shared view of the cached words: a warm hit is a refcount bump, not
    // a vector copy.
    response.words = generate_bitstream_cached(*plan, response.family);
  } else {
    auto owned = std::make_shared<std::vector<u32>>();
    generate_bitstream_into(*owned, *plan, response.family);
    response.words = std::move(owned);
  }
  response.total_bytes = static_cast<u64>(response.words->size()) *
                         device.fabric.traits().bytes_word;
  response.stats = scope.finish();
  return response;
}

ExploreResponse Engine::explore(const ExploreRequest& request) const {
  const obs::RequestScope scope{options_.collect_stats};
  if (request.prms.size() < 2) {
    throw UsageError{"explore needs at least two PRMs"};
  }
  const Device& device = resolve_device(request.device);
  const std::vector<PrmInfo> prms =
      synthesize_prms(request.prms, device.fabric.family());
  check_deadline("explore.synth");

  WorkloadParams wp;
  wp.count = request.tasks;
  wp.prm_count = narrow<u32>(prms.size());
  wp.seed = request.seed;
  ExploreOptions options;
  options.workers = effective_workers(request.workers);
  options.max_groups = request.max_groups;

  ExploreResponse response;
  response.device = device.name;
  response.prms = request.prms;
  response.points = prcost::explore(prms, device.fabric, make_workload(wp),
                                    options);
  const std::vector<DesignPoint> front = pareto_front(response.points);
  response.pareto_count = front.size();
  check_deadline("explore.sweep");

  if (request.cross_check) {
    // Generate the bitstream of every distinct Pareto-front PRR plan (the
    // plans a designer would act on) and compare each generated size
    // against the Eq. (18) prediction. Independent generations fan out
    // over the worker pool and land in the process-wide bitstream cache.
    ScratchScope scratch;
    using PlanKey = std::tuple<u32, u32, u32, u32, u32, u32>;
    std::set<PlanKey, std::less<PlanKey>, ArenaAllocator<PlanKey>> seen{
        ArenaAllocator<PlanKey>{scratch.arena()}};
    std::vector<const PrrPlan*, ArenaAllocator<const PrrPlan*>> plans{
        ArenaAllocator<const PrrPlan*>{scratch.arena()}};
    for (const DesignPoint& point : front) {
      for (const PrrPlan& plan : point.prr_plans) {
        const auto key = std::make_tuple(
            plan.organization.h, plan.organization.columns.clb_cols,
            plan.organization.columns.dsp_cols,
            plan.organization.columns.bram_cols, plan.window.first_col,
            plan.first_row);
        if (seen.insert(key).second) plans.push_back(&plan);
      }
    }
    std::vector<unsigned char> match(plans.size(), 0);
    parallel_for(
        plans.size(),
        [&](std::size_t i) {
          const u64 words =
              generate_bitstream_cached(*plans[i], device.fabric.family())
                  ->size();
          match[i] = words == plans[i]->bitstream.total_words ? 1 : 0;
        },
        options.workers);
    ExploreBitstreamCheck check;
    check.plans_checked = plans.size();
    for (const unsigned char ok : match) {
      check.all_match = check.all_match && ok != 0;
    }
    response.bitstream_check = check;
  }
  response.stats = scope.finish();
  return response;
}

RankResponse Engine::rank(const RankRequest& request) const {
  const obs::RequestScope scope{options_.collect_stats};
  if (request.prms.empty()) throw UsageError{"rank needs at least one PRM"};
  // Requirements are family-specific; synthesize per candidate family is
  // overkill for a ranking - use Virtex-5 as the canonical mapper.
  const std::vector<PrmInfo> prms =
      synthesize_prms(request.prms, Family::kVirtex5);
  check_deadline("rank.synth");

  WorkloadParams wp;
  wp.count = request.tasks;
  wp.prm_count = narrow<u32>(prms.size());
  wp.seed = request.seed;
  DeviceSelectOptions options;
  options.workers = effective_workers(request.workers);
  RankResponse response;
  response.choices = rank_devices(prms, make_workload(wp), options);
  response.stats = scope.finish();
  return response;
}

FaultsResponse Engine::faults(const FaultsRequest& request) const {
  const obs::RequestScope scope{options_.collect_stats};
  if (request.prms.empty()) throw UsageError{"faults needs at least one PRM"};
  const Device& device = resolve_device(request.device);
  std::vector<PrmInfo> prms =
      synthesize_prms(request.prms, device.fabric.family());
  for (PrmInfo& prm : prms) {
    const auto plan = find_prr(prm.req, device.fabric);
    if (!plan) {
      throw InfeasibleError{"no feasible PRR for '" + prm.name + "' on " +
                            device.name};
    }
    prm.bitstream_bytes = plan->bitstream.total_bytes;
  }
  check_deadline("faults.plan");

  FaultProfile profile;
  profile.fault_rate = request.fault_rate.value_or(options_.fault_rate);
  profile.stall_rate = request.stall_rate.value_or(options_.stall_rate);
  profile.seed = request.fault_seed.value_or(options_.fault_seed);
  FaultInjector injector{profile};

  SimConfig config;
  config.prr_count = request.prr_count;
  config.media = parse_media(request.media);
  config.retry.max_retries =
      request.max_retries.value_or(options_.max_retries);
  if (request.recovery == "drop") {
    config.recovery = FaultRecovery::kDrop;
  } else if (request.recovery == "reschedule") {
    config.recovery = FaultRecovery::kReschedule;
  } else {
    throw UsageError{"unknown recovery '" + request.recovery +
                     "' (known: drop reschedule)"};
  }
  // Only attach the injector when the profile can actually fire; the
  // fault-free request then takes the exact pre-fault simulation path.
  if (profile.active()) config.faults = &injector;

  WorkloadParams wp;
  wp.count = request.tasks;
  wp.prm_count = narrow<u32>(prms.size());
  wp.seed = request.seed;
  const SimResult sim = simulate(prms, make_workload(wp), config);

  FaultsResponse response;
  response.device = device.name;
  response.fault_rate = profile.fault_rate;
  response.fault_seed = profile.seed;
  response.max_retries = config.retry.max_retries;
  response.makespan_s = sim.makespan_s;
  response.reconfig_count = sim.reconfig_count;
  response.total_reconfig_s = sim.total_reconfig_s;
  response.failed_reconfigs = sim.failed_reconfigs;
  response.dropped_tasks = sim.dropped_tasks;
  response.rescheduled_tasks = sim.rescheduled_tasks;
  response.retry_attempts = sim.retry_attempts;
  response.total_retry_backoff_s = sim.total_retry_backoff_s;
  response.total_fault_wasted_s = sim.total_fault_wasted_s;
  response.total_penalty_s = sim.total_penalty_s;
  response.injected_faults = injector.corrupted();
  response.injected_stalls = injector.stalls();
  response.effective_reconfig_s =
      sim.reconfig_count != 0
          ? sim.total_reconfig_s / static_cast<double>(sim.reconfig_count)
          : 0.0;
  if (request.strict && sim.dropped_tasks > 0) {
    throw FaultError{"faults: " + std::to_string(sim.dropped_tasks) +
                     " task(s) dropped after exhausted retries"};
  }
  response.stats = scope.finish();
  return response;
}

ScheduleResponse Engine::schedule(const ScheduleRequest& request) const {
  const obs::RequestScope scope{options_.collect_stats};
  if (request.prms.empty()) {
    throw UsageError{"schedule needs at least one PRM"};
  }
  if (request.slots == 0) {
    throw UsageError{"schedule needs at least one slot"};
  }
  const Device& device = resolve_device(request.device);
  const Family family = device.fabric.family();
  std::vector<PrmInfo> prms = synthesize_prms(request.prms, family);

  // Per-PRM plans: the Eq. 18-23 bitstream size prices every candidate
  // reconfiguration, and the prefetch hook generates exactly these plans
  // into the process-wide bitstream cache.
  std::vector<PrrPlan> plans;
  plans.reserve(prms.size());
  for (PrmInfo& prm : prms) {
    const auto plan = find_prr(prm.req, device.fabric);
    if (!plan) {
      throw InfeasibleError{"no feasible PRR for '" + prm.name + "' on " +
                            device.name};
    }
    prm.bitstream_bytes = plan->bitstream.total_bytes;
    plans.push_back(*plan);
  }

  // Pluggable slots: every slot must host any PRM, so each is sized by
  // the element-wise maximum requirement (the paper's shared-PRR rule)
  // and placed by the occupancy-aware floorplanner until the fabric runs
  // out of room.
  std::vector<PrmRequirements> reqs;
  reqs.reserve(prms.size());
  for (const PrmInfo& prm : prms) reqs.push_back(prm.req);
  if (!find_shared_prr(reqs, device.fabric)) {
    throw InfeasibleError{"no shared PRR slot fits every PRM on " +
                          device.name};
  }
  PrmRequirements merged;
  for (const PrmRequirements& req : reqs) {
    merged.lut_ff_pairs = std::max(merged.lut_ff_pairs, req.lut_ff_pairs);
    merged.luts = std::max(merged.luts, req.luts);
    merged.ffs = std::max(merged.ffs, req.ffs);
    merged.dsps = std::max(merged.dsps, req.dsps);
    merged.brams = std::max(merged.brams, req.brams);
  }
  Floorplanner floorplanner{device.fabric};
  u32 placed = 0;
  for (u32 s = 0; s < request.slots; ++s) {
    if (!floorplanner.place("slot" + std::to_string(s), merged)) break;
    ++placed;
  }
  if (placed == 0) {
    throw InfeasibleError{"no PRR slot placeable on " + device.name};
  }
  check_deadline("schedule.plan");

  std::vector<sched::Task> tasks;
  if (request.workload == "trace") {
    if (request.trace.empty()) {
      throw UsageError{"schedule workload 'trace' needs trace text"};
    }
    tasks = sched::parse_trace(request.trace);
    for (const sched::Task& task : tasks) {
      if (task.prm >= prms.size()) {
        throw UsageError{"trace task '" + task.name +
                         "' references unknown PRM index " +
                         std::to_string(task.prm)};
      }
    }
  } else if (request.workload == "poisson" || request.workload == "bursty") {
    sched::ArrivalParams params;
    params.count = request.tasks;
    params.prm_count = narrow<u32>(prms.size());
    params.mean_interarrival_s = request.mean_interarrival_s;
    params.mean_exec_s = request.mean_exec_s;
    params.deadline_factor = request.deadline_factor;
    params.seed = request.seed;
    tasks = request.workload == "poisson" ? sched::make_poisson(params)
                                          : sched::make_bursty(params);
  } else {
    throw UsageError{"unknown workload '" + request.workload +
                     "' (known: poisson bursty trace)"};
  }

  sched::SchedulerConfig config;
  config.slot_count = placed;
  config.policy = sched::parse_policy(request.policy);
  config.cold_media = parse_media(request.media);
  config.warm_media = parse_media(request.warm_media);
  config.fault_rate = request.fault_rate.value_or(options_.fault_rate);
  config.retry.max_retries =
      request.max_retries.value_or(options_.max_retries);
  config.prefetch_rate_hz = request.prefetch_rate_hz;
  config.cpu_workers = request.cpu_workers;
  config.cpu_slowdown = request.cpu_slowdown;
  if (bitstream_cache_enabled()) {
    config.prefetch_hook = [&plans, family](u32 prm) {
      generate_bitstream_cached(plans[prm], family);
    };
  }
  const sched::Report report = sched::run(prms, tasks, config);
  check_deadline("schedule.run");

  ScheduleResponse response;
  response.device = device.name;
  response.policy = std::string{sched::policy_name(config.policy)};
  response.slot_count = placed;
  response.prm_count = narrow<u32>(prms.size());
  response.task_count = tasks.size();
  response.fault_rate = config.fault_rate;
  response.makespan_s = report.makespan_s;
  response.throughput_per_s = report.throughput_per_s;
  response.reuse_hits = report.reuse_hits;
  response.reconfig_count = report.reconfig_count;
  response.total_reconfig_s = report.total_reconfig_s;
  response.reconfig_seconds_per_task = report.reconfig_seconds_per_task;
  response.deadline_misses = report.deadline_misses;
  response.cpu_fallbacks = report.cpu_fallbacks;
  response.prefetches_issued = report.prefetches_issued;
  response.prefetched_reconfigs = report.prefetched_reconfigs;
  response.mean_wait_s = report.mean_wait_s;
  response.mean_turnaround_s = report.mean_turnaround_s;
  if (request.detail) {
    response.task_outcomes.reserve(report.tasks.size());
    for (std::size_t i = 0; i < report.tasks.size(); ++i) {
      const sched::TaskOutcome& outcome = report.tasks[i];
      ScheduleTaskOutcome wire;
      wire.name = tasks[i].name;
      wire.prm = tasks[i].prm;
      wire.slot = outcome.slot;
      wire.cpu_fallback = outcome.cpu_fallback;
      wire.reconfigured = outcome.reconfigured;
      wire.prefetched = outcome.prefetched;
      wire.deadline_miss = outcome.deadline_miss;
      wire.reconfig_s = outcome.reconfig_s;
      wire.start_s = outcome.start_s;
      wire.finish_s = outcome.finish_s;
      wire.wait_s = outcome.wait_s;
      response.task_outcomes.push_back(std::move(wire));
    }
  }
  response.stats = scope.finish();
  return response;
}

OptimizeResponse Engine::optimize(const OptimizeRequest& request) const {
  const obs::RequestScope scope{options_.collect_stats};
  const Device& device = resolve_device(request.device);

  opt::OptInstance instance;
  if (!request.prms.empty()) {
    // Explicit built-in PRMs: one group per PRM unless the request groups
    // them, two tasks per PRM (deterministic from the seed).
    instance.device = &device;
    instance.prms = synthesize_prms(request.prms, device.fabric.family());
    const u32 count = narrow<u32>(instance.prms.size());
    instance.group_count =
        request.groups != 0 ? std::min(request.groups, count) : count;
    instance.group_of.reserve(count);
    for (u32 i = 0; i < count; ++i) {
      instance.group_of.push_back(i % instance.group_count);
    }
    Rng rng{request.seed};
    for (u32 t = 0; t < count * 2; ++t) {
      HwTask task;
      task.name = "t" + std::to_string(t);
      task.prm = t % count;
      task.exec_s = rng.exponential(5.0e-3);
      instance.tasks.push_back(std::move(task));
    }
  } else if (request.prm_count != 0) {
    instance = opt::make_prm_fleet(device, request.prm_count, request.groups,
                                   request.seed);
  } else {
    throw UsageError{"optimize needs PRMs or a prm_count fleet size"};
  }

  check_deadline("optimize.fleet");
  opt::OptimizeOptions options;
  options.seed = request.seed;
  options.rounds = request.rounds;
  options.proposals_per_round = request.proposals_per_round;
  options.media = parse_media(request.media);
  options.fault_rate = request.fault_rate.value_or(options_.fault_rate);
  options.max_retries = request.max_retries.value_or(options_.max_retries);
  options.workers = effective_workers(request.workers);

  opt::JointOptimizer optimizer{instance, options};
  const opt::OptimizeResult result = optimizer.run();

  OptimizeResponse response;
  response.device = device.name;
  response.prm_count = narrow<u32>(instance.prms.size());
  response.group_count = instance.group_count;
  response.seed = request.seed;
  response.greedy_rejected_prms = result.greedy.rejected_prms;
  response.greedy_rejection_rate =
      result.greedy_rejection_rate(instance.prms.size());
  response.greedy_makespan_s = result.greedy.makespan_s;
  response.greedy_fragmentation = result.greedy_frag.fragmentation;
  response.greedy_cost = result.greedy.cost;
  response.greedy_placed_groups = result.greedy.placed_groups;
  response.anneal_rejected_prms = result.best.rejected_prms;
  response.anneal_rejection_rate =
      result.best_rejection_rate(instance.prms.size());
  response.anneal_makespan_s = result.best.makespan_s;
  response.anneal_fragmentation = result.best_frag.fragmentation;
  response.anneal_cost = result.best.cost;
  response.anneal_placed_groups = result.best.placed_groups;
  response.anneal_relocation_s = result.best.relocation_s;
  response.proposals = result.proposals;
  response.accepted = result.accepted;
  response.accepted_swap =
      result.accepted_by_kind[static_cast<std::size_t>(opt::MoveKind::kSwap)];
  response.accepted_relocate = result.accepted_by_kind[static_cast<std::size_t>(
      opt::MoveKind::kRelocate)];
  response.accepted_resize = result.accepted_by_kind[static_cast<std::size_t>(
      opt::MoveKind::kResize)];
  response.accepted_compact = result.accepted_by_kind[static_cast<std::size_t>(
      opt::MoveKind::kCompact)];
  response.cost_verified = result.cost_verified;
  // Cross-check every placed plan's Eq. 18 size against a generated
  // bitstream (served through the process-wide bitstream cache).
  response.bitstream_verified = true;
  for (const PlacedPrr& placed : result.placements) {
    const u64 generated = generated_word_count(placed.plan, device) *
                          device.fabric.traits().bytes_word;
    if (generated != placed.plan.bitstream.total_bytes) {
      response.bitstream_verified = false;
      break;
    }
  }
  response.stats = scope.finish();
  return response;
}

DevicesResponse Engine::list_devices() const {
  const obs::RequestScope scope{options_.collect_stats};
  DevicesResponse response;
  for (const Device& dev : devices().all()) {
    DeviceSummary summary;
    summary.name = dev.name;
    summary.family = std::string{family_name(dev.fabric.family())};
    summary.rows = dev.fabric.rows();
    summary.clb_cols = dev.fabric.column_count(ColumnType::kClb);
    summary.dsp_cols = dev.fabric.column_count(ColumnType::kDsp);
    summary.bram_cols = dev.fabric.column_count(ColumnType::kBram);
    summary.clbs = dev.fabric.total_resources(ColumnType::kClb);
    summary.dsps = dev.fabric.total_resources(ColumnType::kDsp);
    summary.bram36s = dev.fabric.total_resources(ColumnType::kBram);
    response.devices.push_back(std::move(summary));
  }
  response.stats = scope.finish();
  return response;
}

}  // namespace prcost::api
