// JSONL batch front-end: the long-lived, many-request entry point.
//
// Reads one JSON request object per input line, dispatches each through
// an Engine (fanned out over parallel_for - requests are independent),
// and emits exactly one JSON response per input line, in input order: a
// {"result": ...} envelope on success or a {"error": {code, message}}
// envelope using the util/error.hpp taxonomy on failure. A failing
// request never aborts the stream and never changes the process exit
// code - that is what lets a scheduler/partitioner (or a serving daemon)
// pump thousands of evaluations through one process.
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <string_view>

#include "api/engine.hpp"
#include "util/json.hpp"

namespace prcost::api {

/// Dispatch one parsed request object by its "op" member ("devices",
/// "synth", "plan", "bitstream", "explore", "rank", "faults", "optimize",
/// "ping", "metrics"). Returns the response envelope; all Errors are
/// captured into the error envelope, never thrown. An "id" member, when
/// present, is echoed back verbatim. A numeric "deadline_ms" member arms a
/// per-request deadline (stable "deadline" error code on expiry), checked
/// at engine phase boundaries; when the caller already opened an
/// api::DeadlineScope (the serve front-end anchors one at request
/// arrival), that outer deadline wins.
Json dispatch_request(const Engine& engine, const Json& request);

/// Parse one JSONL line and dispatch it. Malformed JSON yields an error
/// envelope with code "parse"; a non-object line yields code "usage".
Json dispatch_line(const Engine& engine, std::string_view line);

/// dispatch_line with the request's "deadline_ms" budget anchored at
/// `arrival` instead of at dispatch time, so queue wait counts against the
/// deadline. The serving front-end stamps arrival when the line is read
/// off the socket.
Json dispatch_line_at(const Engine& engine, std::string_view line,
                      std::chrono::steady_clock::time_point arrival);

struct BatchOptions {
  std::size_t workers = 0;  ///< parallel dispatch workers (0 = auto)
  /// Lines dispatched (and responses emitted) per streaming window; input
  /// is read incrementally so memory stays bounded by one window plus one
  /// read chunk regardless of stream length. 0 = auto (scales with the
  /// worker count).
  std::size_t window = 0;
};

struct BatchStats {
  std::size_t requests = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
};

/// Run every line of `in` through the engine and write one response line
/// per input line to `out`, preserving input order. Input is streamed:
/// lines dispatch in bounded windows as they arrive (a pipe producer sees
/// responses flow before it finishes writing), so memory never grows with
/// the stream. Returns the tally.
BatchStats run_batch(const Engine& engine, std::istream& in, std::ostream& out,
                     const BatchOptions& options = {});

}  // namespace prcost::api
