// Engine: the library-first facade over the whole evaluation path.
//
// One Engine owns the process-wide machinery every request needs - the
// device catalog, the PRR plan cache, the persistent parallel_for worker
// pool, and the observability registry - and exposes each paper workflow
// as a typed request -> typed response call. The CLI commands, the JSONL
// batch front-end, and embedding consumers (partitioners, schedulers,
// services) all go through the same five calls, so device lookup,
// synthesis-report loading, and error mapping live in exactly one place.
//
// Failures are reported through the structured taxonomy in
// util/error.hpp: UsageError for malformed requests, NotFoundError for
// unknown devices/PRMs, IoError for unreadable files, InfeasibleError
// when no PRR fits, ParseError for malformed file/JSON content.
#pragma once

#include <cstddef>

#include "api/requests.hpp"
#include "device/device_db.hpp"
#include "obs/metrics.hpp"

namespace prcost::api {

class Engine {
 public:
  struct Options {
    /// Enable the process-wide PRR plan cache (results are identical
    /// either way; off is an escape hatch for benchmarking).
    bool plan_cache = true;
    /// Enable the process-wide generated-bitstream cache (byte-identical
    /// either way; off is an escape hatch for benchmarking).
    bool bitstream_cache = true;
    /// Default worker count for explore/rank and batch dispatch when the
    /// request leaves its own `workers` at 0 (0 = one per hardware thread).
    std::size_t workers = 0;
    /// Fault-environment defaults for faults() requests that leave the
    /// corresponding optional unset. fault_rate 0 (the default) keeps
    /// every other workflow byte-identical to a fault-free build.
    double fault_rate = 0.0;
    double stall_rate = 0.0;
    u64 fault_seed = 0x5EED;
    u32 max_retries = 3;
    /// Collect request-scoped telemetry (obs::RequestStats) around every
    /// engine call and attach it as the response's optional `stats` block.
    /// Off by default: responses (and their serialization) are then
    /// byte-identical to builds without the feature.
    bool collect_stats = false;
    /// Directory for persistent warm-start snapshots of the plan and
    /// bitstream caches (empty = feature off). Construction loads any
    /// snapshots found there; missing or corrupt snapshots cold-start
    /// cleanly (results are identical either way - the snapshots only
    /// pre-warm memoization). save_caches() writes them back.
    std::string cache_dir;
  };

  Engine();  ///< default Options
  explicit Engine(const Options& options);

  const Options& options() const noexcept { return options_; }

  /// The device catalog this engine evaluates against.
  const DeviceDb& devices() const noexcept { return DeviceDb::instance(); }

  /// The metrics registry populated by the instrumented hot paths.
  obs::Registry& metrics() const noexcept { return obs::registry(); }

  /// Synthesize a PRM and return the Table I report.
  SynthResponse synth(const SynthRequest& request) const;

  /// Size a PRR for one PRM on one device (Fig. 1 flow), with optional
  /// full-flow cross-checks; throws InfeasibleError when nothing fits.
  PlanResponse plan(const PlanRequest& request) const;

  /// Plan + generate the concrete partial bitstream words.
  BitstreamResponse bitstream(const BitstreamRequest& request) const;

  /// Evaluate every partitioning of the PRMs on one device.
  ExploreResponse explore(const ExploreRequest& request) const;

  /// Rank the whole catalog for a PRM set.
  RankResponse rank(const RankRequest& request) const;

  /// Multitask simulation under deterministic fault injection: CRC-verified
  /// transfers with bounded retry, graceful degradation on permanent
  /// failure. Throws FaultError when `strict` and any task was dropped.
  FaultsResponse faults(const FaultsRequest& request) const;

  /// Joint partition-schedule-floorplan optimization (src/opt): greedy
  /// baseline vs simulated annealing over swap/relocate/resize/compact
  /// moves, every candidate costed through the bitstream, reconfiguration
  /// and fault-retry models. Throws UsageError when neither `prms` nor
  /// `prm_count` describes a fleet.
  OptimizeResponse optimize(const OptimizeRequest& request) const;

  /// Online event-driven scheduling (src/sched): place the requested PRR
  /// slots with the floorplanner, then run the priority ready-queue
  /// runtime over a synthetic or replayed arrival stream, pricing every
  /// reconfiguration through the controller + fault-retry models, with
  /// arrival-rate-triggered bitstream prefetch into the process-wide
  /// bitstream cache and CPU fallback for deadline-infeasible placements.
  /// Throws InfeasibleError when no slot fits on the fabric.
  ScheduleResponse schedule(const ScheduleRequest& request) const;

  /// The catalog, summarized row-per-device.
  DevicesResponse list_devices() const;

  /// Write the plan + bitstream cache snapshots into options().cache_dir
  /// (created if absent). No-op when cache_dir is empty. Throws IoError
  /// when the directory or files cannot be written.
  void save_caches() const;

 private:
  void load_caches() const;

  const Device& resolve_device(const std::string& name) const;
  std::size_t effective_workers(std::size_t requested) const;

  Options options_;
};

}  // namespace prcost::api
