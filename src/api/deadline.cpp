#include "api/deadline.hpp"

#include <string>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace prcost::api {
namespace {

thread_local bool t_active = false;
thread_local DeadlineClock::time_point t_deadline{};

}  // namespace

DeadlineScope::DeadlineScope(DeadlineClock::time_point deadline) {
  if (t_active) return;  // outermost wins
  t_active = true;
  t_deadline = deadline;
  owner_ = true;
}

DeadlineScope::~DeadlineScope() {
  if (owner_) t_active = false;
}

bool deadline_active() noexcept { return t_active; }

void check_deadline(const char* phase) {
  if (!t_active) return;
  const auto now = DeadlineClock::now();
  if (now <= t_deadline) return;
  const auto over_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      now - t_deadline);
  PRCOST_COUNT("api.deadline_exceeded");
  throw DeadlineError{"deadline exceeded at phase '" + std::string{phase} +
                      "' (" + std::to_string(over_ns.count() / 1000000) +
                      " ms over budget)"};
}

std::optional<std::chrono::nanoseconds> deadline_remaining() noexcept {
  if (!t_active) return std::nullopt;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      t_deadline - DeadlineClock::now());
}

}  // namespace prcost::api
