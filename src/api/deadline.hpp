// Per-request deadline propagation for the engine's phase boundaries.
//
// A request may carry a "deadline_ms" budget (JSONL member, or an
// arrival-anchored deadline set by the serving front-end). The dispatch
// layer opens a DeadlineScope around the engine call; the engine checks
// check_deadline() at its phase boundaries (after input load, after the
// PRR search, before cross-checks...) and throws DeadlineError - mapped
// to the stable "deadline" wire code - the first time the budget is
// exhausted. Work is never cancelled mid-phase, so a response is either
// complete or a clean deadline error, never partial.
//
// Scopes nest outermost-wins: the serve front-end anchors the deadline at
// request *arrival* (queue time counts against the budget), and the inner
// scope that dispatch_request would open for the same request becomes a
// no-op. The deadline is thread-local to the dispatching thread; work
// fanned out through parallel_for is bounded by the checks its submitter
// performs between batches.
#pragma once

#include <chrono>
#include <optional>

namespace prcost::api {

using DeadlineClock = std::chrono::steady_clock;

/// RAII deadline for the current thread. Only the outermost scope on a
/// thread takes effect; nested scopes are no-ops and restore nothing.
class DeadlineScope {
 public:
  explicit DeadlineScope(DeadlineClock::time_point deadline);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  bool owner_ = false;
};

/// True when a DeadlineScope is active on this thread.
bool deadline_active() noexcept;

/// Throws DeadlineError naming `phase` when the active deadline has
/// passed; no-op when no scope is active. Call at phase boundaries.
void check_deadline(const char* phase);

/// Remaining budget of the active deadline (negative when expired);
/// nullopt when no scope is active.
std::optional<std::chrono::nanoseconds> deadline_remaining() noexcept;

}  // namespace prcost::api
