// Typed request/response layer of the library-first engine API.
//
// Each CLI command (and each JSONL batch op) is a plain struct in and a
// plain struct out, with JSON (de)serialization alongside, so the same
// evaluation path serves the shell, a batch stream, and an embedding
// partitioner/scheduler without re-deriving device lookup, synthesis
// loading, or output formatting per entry point. The wire schema is
// documented in README.md ("Batch mode & the JSONL API").
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/prr_search.hpp"
#include "dse/device_select.hpp"
#include "dse/explorer.hpp"
#include "netlist/netlist.hpp"
#include "obs/request_stats.hpp"
#include "synth/report.hpp"
#include "util/json.hpp"

namespace prcost::api {

/// Where a request's PRM comes from. Exactly one member is set; validate()
/// enforces that and throws UsageError otherwise.
struct PrmSource {
  std::string prm;           ///< built-in generator name ("fir", "mips"...)
  std::string netlist_path;  ///< .net file to load and synthesize
  std::string report_path;   ///< .srp synthesis report (no netlist => no PAR)

  void validate() const;     ///< throws UsageError unless exactly one is set
};

/// Construct a built-in PRM netlist by name; throws NotFoundError listing
/// the known names. The single source of truth for the generator catalog.
Netlist make_builtin_prm(const std::string& name);

/// Built-in PRM names, in canonical (usage-banner) order.
const std::vector<std::string>& builtin_prm_names();

/// "area" | "height" | "bitstream" -> objective; throws UsageError.
SearchObjective parse_objective(const std::string& name);
std::string_view objective_name(SearchObjective objective);

// ---------------------------------------------------------------- synth --

struct SynthRequest {
  PrmSource source;
  Family family = Family::kVirtex5;
};

struct SynthResponse {
  SynthesisReport report;
  /// Request-scoped telemetry; set only when Engine::Options::collect_stats
  /// (every response carries this optional; serialized last, so stats-off
  /// output is byte-identical to builds that predate it).
  std::optional<obs::RequestStatsSummary> stats;
};

// ----------------------------------------------------------------- plan --

struct PlanRequest {
  std::string device;        ///< part name (shorthands accepted)
  PrmSource source;
  SearchObjective objective = SearchObjective::kMinArea;
  bool shaped = false;       ///< also evaluate the L-shaped alternative
  /// Run the full-flow cross-checks (PAR when a netlist is available, and
  /// always a generated bitstream compared byte-wise against the model).
  bool cross_check = true;
};

/// PAR cross-check summary (only when the netlist was synthesized here).
struct ParCrossCheck {
  bool routed = false;
  std::string failure_reason;
  u64 placed_cells = 0;
  u64 hpwl_initial = 0;
  u64 hpwl_final = 0;
  double critical_path_ns = 0;
};

/// L-shaped alternative summary (only when PlanRequest::shaped).
struct ShapedAlternative {
  bool beats_rectangle = false;
  u64 cells = 0;
  u64 bitstream_bytes = 0;
  u64 cells_saved = 0;       ///< vs the rectangular plan (0 when not better)
};

struct PlanResponse {
  std::string device;        ///< canonical part name
  PrrPlan plan;
  std::optional<ParCrossCheck> par;
  std::optional<u64> generated_bytes;  ///< set when cross_check ran
  std::optional<ShapedAlternative> shaped;
  std::optional<obs::RequestStatsSummary> stats;  ///< see SynthResponse

  bool generated_matches_model() const {
    return generated_bytes && *generated_bytes == plan.bitstream.total_bytes;
  }
};

// ------------------------------------------------------------ bitstream --

struct BitstreamRequest {
  std::string device;
  PrmSource source;
};

struct BitstreamResponse {
  std::string device;
  Family family = Family::kVirtex5;
  PrrPlan plan;
  /// The generated partial bitstream. Shared with the process-wide
  /// bitstream cache when it is enabled (a warm response is a refcount
  /// bump, not a copy); always non-null after a successful request.
  std::shared_ptr<const std::vector<u32>> words;
  u64 total_bytes = 0;       ///< words serialized at traits.bytes_word
  std::optional<obs::RequestStatsSummary> stats;  ///< see SynthResponse
};

// -------------------------------------------------------------- explore --

struct ExploreRequest {
  std::string device;
  std::vector<std::string> prms;  ///< built-in PRM names (>= 2)
  std::size_t workers = 0;        ///< 0 = engine default
  u32 max_groups = 0;             ///< cap PRR count (0 = #PRMs)
  u32 tasks = 100;                ///< workload size (CLI default)
  u64 seed = 42;                  ///< workload seed
  /// Generate the bitstream of every distinct Pareto-front PRR plan (in
  /// parallel, through the bitstream cache) and compare each generated
  /// size against the Eq. (18) model prediction.
  bool cross_check = false;
};

/// Bitstream cross-check summary (only when ExploreRequest::cross_check).
struct ExploreBitstreamCheck {
  u64 plans_checked = 0;  ///< distinct Pareto-front PRR plans generated
  bool all_match = true;  ///< every generated size == model prediction
};

struct ExploreResponse {
  std::string device;
  std::vector<std::string> prms;
  std::vector<DesignPoint> points;
  std::size_t pareto_count = 0;
  std::optional<ExploreBitstreamCheck> bitstream_check;
  std::optional<obs::RequestStatsSummary> stats;  ///< see SynthResponse
};

// ----------------------------------------------------------------- rank --

struct RankRequest {
  std::vector<std::string> prms;  ///< built-in PRM names (>= 1)
  std::size_t workers = 0;
  u32 tasks = 100;
  u64 seed = 42;
};

struct RankResponse {
  std::vector<DeviceChoice> choices;  ///< sorted as rank_devices returns
  std::optional<obs::RequestStatsSummary> stats;  ///< see SynthResponse
};

// --------------------------------------------------------------- faults --

/// Fault-injection run over the multitask simulator: size one PRR per
/// built-in PRM, run the seeded workload with a deterministic
/// FaultInjector on every context switch, and report the degradation and
/// retry accounting. Optional fields fall back to Engine::Options.
struct FaultsRequest {
  std::string device;
  std::vector<std::string> prms;  ///< built-in PRM names (>= 1)
  u32 prr_count = 2;
  u32 tasks = 100;                ///< workload size
  u64 seed = 42;                  ///< workload seed
  std::optional<double> fault_rate;   ///< unset = engine default
  std::optional<double> stall_rate;   ///< unset = engine default
  std::optional<u64> fault_seed;      ///< unset = engine default
  std::optional<u32> max_retries;     ///< unset = engine default
  std::string media = "ddr";
  std::string recovery = "drop";      ///< "drop" | "reschedule"
  /// Fail the whole request (FaultError) when any task is dropped.
  bool strict = false;
};

struct FaultsResponse {
  std::string device;
  double fault_rate = 0;     ///< effective (post-default) rate
  u64 fault_seed = 0;        ///< effective injector seed
  u32 max_retries = 0;       ///< effective retry budget
  double makespan_s = 0;
  u64 reconfig_count = 0;    ///< successful reconfigurations
  double total_reconfig_s = 0;
  u64 failed_reconfigs = 0;
  u64 dropped_tasks = 0;
  u64 rescheduled_tasks = 0;
  u64 retry_attempts = 0;    ///< transfer attempts beyond the first
  double total_retry_backoff_s = 0;
  double total_fault_wasted_s = 0;
  double total_penalty_s = 0;
  u64 injected_faults = 0;   ///< corrupted attempts drawn by the injector
  u64 injected_stalls = 0;
  /// Mean effective seconds per successful reconfiguration, including
  /// retry, backoff, and wasted-attempt time (0 when none succeeded).
  double effective_reconfig_s = 0;
  std::optional<obs::RequestStatsSummary> stats;  ///< see SynthResponse
};

// ------------------------------------------------------------- optimize --

/// Joint partition-schedule-floorplan optimization (src/opt): group the
/// PRM fleet into shared PRRs, place them on the occupancy grid, and
/// anneal swap/relocate/resize/compact moves against the greedy baseline,
/// costing every move through the bitstream (Eq. 18-23), reconfiguration,
/// and fault-retry models. Either list built-in PRMs or set `prm_count`
/// for a deterministic synthetic fleet at bench scale.
struct OptimizeRequest {
  std::string device;
  std::vector<std::string> prms;  ///< built-in names; empty => synthetic
  u32 prm_count = 0;              ///< synthetic fleet size (prms empty)
  u32 groups = 0;                 ///< shared PRRs (0 = auto)
  u64 seed = 1;                   ///< fleet + annealer seed
  u32 rounds = 48;                ///< annealing rounds
  u32 proposals_per_round = 8;    ///< speculative proposals per round
  std::string media = "ddr";      ///< bitstream storage media
  std::optional<double> fault_rate;  ///< unset = engine default
  std::optional<u32> max_retries;    ///< unset = engine default
  std::size_t workers = 0;        ///< parallel evaluation width
};

struct OptimizeResponse {
  std::string device;
  u32 prm_count = 0;
  u32 group_count = 0;
  u64 seed = 0;
  // Greedy baseline (index-order placement, no moves).
  u64 greedy_rejected_prms = 0;
  double greedy_rejection_rate = 0;
  double greedy_makespan_s = 0;
  double greedy_fragmentation = 0;
  double greedy_cost = 0;
  u64 greedy_placed_groups = 0;
  // After annealing.
  u64 anneal_rejected_prms = 0;
  double anneal_rejection_rate = 0;
  double anneal_makespan_s = 0;
  double anneal_fragmentation = 0;
  double anneal_cost = 0;
  u64 anneal_placed_groups = 0;
  double anneal_relocation_s = 0;  ///< runtime-move ICAP time spent
  u64 proposals = 0;
  u64 accepted = 0;
  u64 accepted_swap = 0;
  u64 accepted_relocate = 0;
  u64 accepted_resize = 0;
  u64 accepted_compact = 0;
  /// Re-evaluating the final layout reproduced the accepted cost exactly.
  bool cost_verified = false;
  /// Every placed plan's generated bitstream (through the bitstream
  /// cache) matched its Eq. 18 model size.
  bool bitstream_verified = false;
  std::optional<obs::RequestStatsSummary> stats;  ///< see SynthResponse
};

// ------------------------------------------------------------- schedule --

/// Online-scheduler run (src/sched): place `slots` shared PRR slots with
/// the floorplanner, then drive the event-driven runtime over a synthetic
/// arrival process or a replayed JSONL trace, pricing every placement
/// through the controller + fault-retry models. Optional fields fall back
/// to Engine::Options.
struct ScheduleRequest {
  std::string device;
  std::vector<std::string> prms;  ///< built-in PRM names (>= 1)
  u32 slots = 2;                  ///< PRR slots (floorplanner-placed)
  std::string policy = "fcfs";    ///< "fcfs" | "priority" | "edf"
  /// Arrival source: "poisson" | "bursty" | "trace" (replay `trace`).
  std::string workload = "poisson";
  std::string trace;              ///< JSONL trace text (workload "trace")
  u32 tasks = 100;                ///< synthetic workload size
  u64 seed = 42;                  ///< synthetic workload seed
  double mean_interarrival_s = 2.0e-3;
  double mean_exec_s = 5.0e-3;
  /// Relative deadline factor for synthetic tasks (0 = no deadlines).
  double deadline_factor = 0.0;
  std::string media = "flash";    ///< cold media (bitstream store)
  std::string warm_media = "ddr"; ///< media after a prefetch staged it
  /// Prefetch when a PRM's EWMA arrival-rate estimate reaches this (Hz);
  /// 0 disables prefetch.
  double prefetch_rate_hz = 0.0;
  std::optional<double> fault_rate;  ///< unset = engine default
  std::optional<u32> max_retries;    ///< unset = engine default
  u32 cpu_workers = 2;            ///< CPU-fallback pool (0 = no fallback)
  double cpu_slowdown = 8.0;      ///< software/hardware exec-time ratio
  bool detail = false;            ///< include per-task outcomes
};

/// Per-task outcome on the wire (ScheduleRequest::detail).
struct ScheduleTaskOutcome {
  std::string name;
  u32 prm = 0;
  u32 slot = 0;
  bool cpu_fallback = false;
  bool reconfigured = false;
  bool prefetched = false;
  bool deadline_miss = false;
  double reconfig_s = 0;
  double start_s = 0;
  double finish_s = 0;
  double wait_s = 0;
};

struct ScheduleResponse {
  std::string device;
  std::string policy;
  u32 slot_count = 0;        ///< slots actually placed on the fabric
  u32 prm_count = 0;
  u64 task_count = 0;
  double fault_rate = 0;     ///< effective (post-default) rate
  double makespan_s = 0;
  double throughput_per_s = 0;
  u64 reuse_hits = 0;
  u64 reconfig_count = 0;
  double total_reconfig_s = 0;
  double reconfig_seconds_per_task = 0;
  u64 deadline_misses = 0;
  u64 cpu_fallbacks = 0;
  u64 prefetches_issued = 0;
  u64 prefetched_reconfigs = 0;
  double mean_wait_s = 0;
  double mean_turnaround_s = 0;
  std::vector<ScheduleTaskOutcome> task_outcomes;  ///< only when detail
  std::optional<obs::RequestStatsSummary> stats;  ///< see SynthResponse
};

// -------------------------------------------------------------- devices --

struct DeviceSummary {
  std::string name;
  std::string family;
  u32 rows = 0;
  u32 clb_cols = 0;
  u32 dsp_cols = 0;
  u32 bram_cols = 0;
  u64 clbs = 0;
  u64 dsps = 0;
  u64 bram36s = 0;
};

struct DevicesResponse {
  std::vector<DeviceSummary> devices;
  std::optional<obs::RequestStatsSummary> stats;  ///< see SynthResponse
};

// --------------------------------------------------- JSON (de)serialization

SynthRequest synth_request_from_json(const Json& j);
PlanRequest plan_request_from_json(const Json& j);
BitstreamRequest bitstream_request_from_json(const Json& j);
ExploreRequest explore_request_from_json(const Json& j);
RankRequest rank_request_from_json(const Json& j);
FaultsRequest faults_request_from_json(const Json& j);
OptimizeRequest optimize_request_from_json(const Json& j);
ScheduleRequest schedule_request_from_json(const Json& j);

/// Stats block serialization (the "stats" member on every response):
/// {"wall_ms":..,"cache":{"plan_hits":..,"plan_misses":..,
///  "bitstream_hits":..,"bitstream_misses":..},"retries":..,
///  "allocations":..,"phases":[{"name":..,"count":..,"total_ms":..,
///  "self_ms":..,"max_ms":..},...]}.
Json to_json(const obs::RequestStatsSummary& s);

Json to_json(const SynthResponse& r);
Json to_json(const PlanResponse& r);
Json to_json(const BitstreamResponse& r);
Json to_json(const ExploreResponse& r);
Json to_json(const RankResponse& r);
Json to_json(const DevicesResponse& r);
Json to_json(const FaultsResponse& r);
Json to_json(const OptimizeResponse& r);
Json to_json(const ScheduleResponse& r);

Json to_json(const SynthRequest& r);
Json to_json(const PlanRequest& r);
Json to_json(const BitstreamRequest& r);
Json to_json(const ExploreRequest& r);
Json to_json(const RankRequest& r);
Json to_json(const FaultsRequest& r);
Json to_json(const OptimizeRequest& r);
Json to_json(const ScheduleRequest& r);

}  // namespace prcost::api
