#include "api/requests.hpp"

#include "netlist/generators.hpp"
#include "util/error.hpp"

namespace prcost::api {
namespace {

/// Join the builtin PRM names for error messages.
std::string prm_name_list() {
  std::string out;
  for (const std::string& name : builtin_prm_names()) {
    if (!out.empty()) out += ' ';
    out += name;
  }
  return out;
}

std::string get_string(const Json& j, std::string_view key,
                       const std::string& fallback = {}) {
  const Json* member = j.find(key);
  return member == nullptr ? fallback : member->as_string();
}

u64 get_u64(const Json& j, std::string_view key, u64 fallback) {
  const Json* member = j.find(key);
  return member == nullptr ? fallback : member->as_u64();
}

bool get_bool(const Json& j, std::string_view key, bool fallback) {
  const Json* member = j.find(key);
  return member == nullptr ? fallback : member->as_bool();
}

double get_double(const Json& j, std::string_view key, double fallback) {
  const Json* member = j.find(key);
  return member == nullptr ? fallback : member->as_double();
}

PrmSource source_from_json(const Json& j) {
  PrmSource source;
  source.prm = get_string(j, "prm");
  source.netlist_path = get_string(j, "netlist");
  source.report_path = get_string(j, "report");
  return source;
}

std::vector<std::string> prms_from_json(const Json& j) {
  const Json* member = j.find("prms");
  if (member == nullptr) return {};
  std::vector<std::string> prms;
  for (const Json& name : member->as_array()) prms.push_back(name.as_string());
  return prms;
}

void set_source(Json& j, const PrmSource& source) {
  if (!source.prm.empty()) j.set("prm", source.prm);
  if (!source.netlist_path.empty()) j.set("netlist", source.netlist_path);
  if (!source.report_path.empty()) j.set("report", source.report_path);
}

Json prms_to_json(const std::vector<std::string>& prms) {
  Json array = Json::array();
  for (const std::string& name : prms) array.push_back(name);
  return array;
}

Json organization_to_json(const PrrOrganization& org) {
  Json j = Json::object();
  j.set("h", org.h)
      .set("clb_cols", org.columns.clb_cols)
      .set("dsp_cols", org.columns.dsp_cols)
      .set("bram_cols", org.columns.bram_cols)
      .set("width", org.width())
      .set("size", org.size());
  return j;
}

Json plan_to_json(const PrrPlan& plan) {
  Json j = Json::object();
  j.set("organization", organization_to_json(plan.organization));
  Json window = Json::object();
  window.set("first_col", plan.window.first_col)
      .set("width", plan.window.width);
  j.set("window", std::move(window));
  j.set("first_row", plan.first_row);
  Json ru = Json::object();
  ru.set("clb", plan.ru.clb)
      .set("ff", plan.ru.ff)
      .set("lut", plan.ru.lut)
      .set("dsp", plan.ru.dsp)
      .set("bram", plan.ru.bram);
  j.set("utilization", std::move(ru));
  Json bs = Json::object();
  bs.set("total_words", plan.bitstream.total_words)
      .set("total_bytes", plan.bitstream.total_bytes)
      .set("config_frames_per_row", plan.bitstream.config_frames_per_row);
  j.set("bitstream", std::move(bs));
  return j;
}

Json report_to_json(const SynthesisReport& report) {
  Json j = Json::object();
  j.set("module", report.module_name)
      .set("family", std::string{family_name(report.family)})
      .set("lut_ff_pairs", report.lut_ff_pairs)
      .set("slice_luts", report.slice_luts)
      .set("slice_ffs", report.slice_ffs)
      .set("dsps", report.dsps)
      .set("brams", report.brams)
      .set("bonded_iobs", report.bonded_iobs);
  return j;
}

}  // namespace

void PrmSource::validate() const {
  const int set_count = (prm.empty() ? 0 : 1) + (netlist_path.empty() ? 0 : 1) +
                        (report_path.empty() ? 0 : 1);
  if (set_count == 0) throw UsageError{"need a PRM or --report file"};
  if (set_count > 1) {
    throw UsageError{"give exactly one of a PRM name, --netlist, --report"};
  }
}

Netlist make_builtin_prm(const std::string& name) {
  if (name == "fir") return make_fir();
  if (name == "mips") return make_mips5();
  if (name == "sdram") return make_sdram_ctrl();
  if (name == "aes") return make_aes_round();
  if (name == "crc32") return make_crc32();
  if (name == "uart") return make_uart();
  if (name == "matmul") return make_matmul();
  if (name == "sobel") return make_sobel();
  if (name == "fft") return make_fft_stage();
  throw NotFoundError{"unknown PRM '" + name + "' (known: " + prm_name_list() +
                      ")"};
}

const std::vector<std::string>& builtin_prm_names() {
  static const std::vector<std::string> names{
      "fir", "mips", "sdram", "aes", "crc32", "uart", "matmul", "sobel",
      "fft"};
  return names;
}

SearchObjective parse_objective(const std::string& name) {
  if (name == "area") return SearchObjective::kMinArea;
  if (name == "height") return SearchObjective::kFirstFeasible;
  if (name == "bitstream") return SearchObjective::kMinBitstream;
  throw UsageError{"unknown objective '" + name + "'"};
}

std::string_view objective_name(SearchObjective objective) {
  switch (objective) {
    case SearchObjective::kMinArea:       return "area";
    case SearchObjective::kFirstFeasible: return "height";
    case SearchObjective::kMinBitstream:  return "bitstream";
  }
  return "area";
}

SynthRequest synth_request_from_json(const Json& j) {
  SynthRequest request;
  request.source = source_from_json(j);
  request.family = parse_family(get_string(j, "family", "v5"));
  return request;
}

PlanRequest plan_request_from_json(const Json& j) {
  PlanRequest request;
  request.device = get_string(j, "device");
  request.source = source_from_json(j);
  request.objective = parse_objective(get_string(j, "objective", "area"));
  request.shaped = get_bool(j, "shaped", false);
  request.cross_check = get_bool(j, "cross_check", true);
  return request;
}

BitstreamRequest bitstream_request_from_json(const Json& j) {
  BitstreamRequest request;
  request.device = get_string(j, "device");
  request.source = source_from_json(j);
  return request;
}

ExploreRequest explore_request_from_json(const Json& j) {
  ExploreRequest request;
  request.device = get_string(j, "device");
  request.prms = prms_from_json(j);
  request.workers = get_u64(j, "workers", 0);
  request.max_groups = narrow<u32>(get_u64(j, "max_groups", 0));
  request.tasks = narrow<u32>(get_u64(j, "tasks", 100));
  request.seed = get_u64(j, "seed", 42);
  request.cross_check = get_bool(j, "cross_check", false);
  return request;
}

RankRequest rank_request_from_json(const Json& j) {
  RankRequest request;
  request.prms = prms_from_json(j);
  request.workers = get_u64(j, "workers", 0);
  request.tasks = narrow<u32>(get_u64(j, "tasks", 100));
  request.seed = get_u64(j, "seed", 42);
  return request;
}

FaultsRequest faults_request_from_json(const Json& j) {
  FaultsRequest request;
  request.device = get_string(j, "device");
  request.prms = prms_from_json(j);
  request.prr_count = narrow<u32>(get_u64(j, "prr_count", 2));
  request.tasks = narrow<u32>(get_u64(j, "tasks", 100));
  request.seed = get_u64(j, "seed", 42);
  if (j.find("fault_rate")) {
    request.fault_rate = get_double(j, "fault_rate", 0.0);
  }
  if (j.find("stall_rate")) {
    request.stall_rate = get_double(j, "stall_rate", 0.0);
  }
  if (j.find("fault_seed")) {
    request.fault_seed = get_u64(j, "fault_seed", 0);
  }
  if (j.find("max_retries")) {
    request.max_retries = narrow<u32>(get_u64(j, "max_retries", 0));
  }
  request.media = get_string(j, "media", "ddr");
  request.recovery = get_string(j, "recovery", "drop");
  request.strict = get_bool(j, "strict", false);
  return request;
}

OptimizeRequest optimize_request_from_json(const Json& j) {
  OptimizeRequest request;
  request.device = get_string(j, "device");
  request.prms = prms_from_json(j);
  request.prm_count = narrow<u32>(get_u64(j, "prm_count", 0));
  request.groups = narrow<u32>(get_u64(j, "groups", 0));
  request.seed = get_u64(j, "seed", 1);
  request.rounds = narrow<u32>(get_u64(j, "rounds", 48));
  request.proposals_per_round =
      narrow<u32>(get_u64(j, "proposals_per_round", 8));
  request.media = get_string(j, "media", "ddr");
  if (j.find("fault_rate")) {
    request.fault_rate = get_double(j, "fault_rate", 0.0);
  }
  if (j.find("max_retries")) {
    request.max_retries = narrow<u32>(get_u64(j, "max_retries", 0));
  }
  request.workers = get_u64(j, "workers", 0);
  return request;
}

ScheduleRequest schedule_request_from_json(const Json& j) {
  ScheduleRequest request;
  request.device = get_string(j, "device");
  request.prms = prms_from_json(j);
  request.slots = narrow<u32>(get_u64(j, "slots", 2));
  request.policy = get_string(j, "policy", "fcfs");
  request.workload = get_string(j, "workload", "poisson");
  request.trace = get_string(j, "trace", "");
  request.tasks = narrow<u32>(get_u64(j, "tasks", 100));
  request.seed = get_u64(j, "seed", 42);
  request.mean_interarrival_s =
      get_double(j, "mean_interarrival_s", 2.0e-3);
  request.mean_exec_s = get_double(j, "mean_exec_s", 5.0e-3);
  request.deadline_factor = get_double(j, "deadline_factor", 0.0);
  request.media = get_string(j, "media", "flash");
  request.warm_media = get_string(j, "warm_media", "ddr");
  request.prefetch_rate_hz = get_double(j, "prefetch_rate_hz", 0.0);
  if (j.find("fault_rate")) {
    request.fault_rate = get_double(j, "fault_rate", 0.0);
  }
  if (j.find("max_retries")) {
    request.max_retries = narrow<u32>(get_u64(j, "max_retries", 0));
  }
  request.cpu_workers = narrow<u32>(get_u64(j, "cpu_workers", 2));
  request.cpu_slowdown = get_double(j, "cpu_slowdown", 8.0);
  request.detail = get_bool(j, "detail", false);
  return request;
}

Json to_json(const obs::RequestStatsSummary& s) {
  const auto ms = [](u64 ns) { return static_cast<double>(ns) / 1e6; };
  Json j = Json::object();
  j.set("wall_ms", ms(s.wall_ns));
  Json cache = Json::object();
  cache.set("plan_hits", s.plan_cache_hits)
      .set("plan_misses", s.plan_cache_misses)
      .set("bitstream_hits", s.bitstream_cache_hits)
      .set("bitstream_misses", s.bitstream_cache_misses);
  j.set("cache", std::move(cache));
  j.set("retries", s.retries);
  j.set("allocations", s.allocations);
  Json phases = Json::array();
  for (const obs::RequestPhase& phase : s.phases) {
    Json p = Json::object();
    p.set("name", phase.name)
        .set("count", phase.count)
        .set("total_ms", ms(phase.total_ns))
        .set("self_ms", ms(phase.self_ns))
        .set("max_ms", ms(phase.max_ns));
    phases.push_back(std::move(p));
  }
  j.set("phases", std::move(phases));
  return j;
}

namespace {

/// Append the optional stats block. Always the LAST member set on a
/// response object: stats-off serialization must stay byte-identical to
/// output that predates the stats feature.
void set_stats(Json& j, const std::optional<obs::RequestStatsSummary>& s) {
  if (s) j.set("stats", to_json(*s));
}

}  // namespace

Json to_json(const SynthResponse& r) {
  Json j = Json::object();
  j.set("report", report_to_json(r.report));
  set_stats(j, r.stats);
  return j;
}

Json to_json(const PlanResponse& r) {
  Json j = Json::object();
  j.set("device", r.device);
  j.set("plan", plan_to_json(r.plan));
  if (r.par) {
    Json par = Json::object();
    par.set("routed", r.par->routed);
    if (r.par->routed) {
      par.set("placed_cells", r.par->placed_cells)
          .set("hpwl_initial", r.par->hpwl_initial)
          .set("hpwl_final", r.par->hpwl_final)
          .set("critical_path_ns", r.par->critical_path_ns);
    } else {
      par.set("failure_reason", r.par->failure_reason);
    }
    j.set("par", std::move(par));
  }
  if (r.generated_bytes) {
    j.set("generated_bytes", *r.generated_bytes);
    j.set("model_match", r.generated_matches_model());
  }
  if (r.shaped) {
    Json shaped = Json::object();
    shaped.set("beats_rectangle", r.shaped->beats_rectangle)
        .set("cells", r.shaped->cells)
        .set("bitstream_bytes", r.shaped->bitstream_bytes)
        .set("cells_saved", r.shaped->cells_saved);
    j.set("shaped", std::move(shaped));
  }
  set_stats(j, r.stats);
  return j;
}

Json to_json(const BitstreamResponse& r) {
  Json j = Json::object();
  j.set("device", r.device)
      .set("family", std::string{family_name(r.family)})
      .set("plan", plan_to_json(r.plan))
      .set("words", static_cast<u64>(r.words ? r.words->size() : 0))
      .set("total_bytes", r.total_bytes);
  set_stats(j, r.stats);
  return j;
}

Json to_json(const ExploreResponse& r) {
  Json j = Json::object();
  j.set("device", r.device);
  j.set("prms", prms_to_json(r.prms));
  Json points = Json::array();
  for (const DesignPoint& point : r.points) {
    Json p = Json::object();
    Json partition = Json::array();
    for (const auto& group : point.partition) {
      Json names = Json::array();
      for (const u32 prm : group) names.push_back(r.prms[prm]);
      partition.push_back(std::move(names));
    }
    p.set("partition", std::move(partition));
    p.set("feasible", point.feasible);
    if (point.feasible) {
      p.set("total_prr_area", point.total_prr_area)
          .set("total_bitstream_bytes", point.total_bitstream_bytes)
          .set("makespan_s", point.makespan_s)
          .set("total_reconfig_s", point.total_reconfig_s);
    } else {
      p.set("reason", point.infeasible_reason);
    }
    points.push_back(std::move(p));
  }
  j.set("points", std::move(points));
  j.set("pareto_count", static_cast<u64>(r.pareto_count));
  if (r.bitstream_check) {
    Json check = Json::object();
    check.set("plans_checked", r.bitstream_check->plans_checked)
        .set("all_match", r.bitstream_check->all_match);
    j.set("bitstream_check", std::move(check));
  }
  set_stats(j, r.stats);
  return j;
}

Json to_json(const RankResponse& r) {
  Json j = Json::object();
  Json choices = Json::array();
  for (const DeviceChoice& choice : r.choices) {
    Json c = Json::object();
    c.set("device", choice.device).set("feasible", choice.feasible);
    if (choice.feasible) {
      c.set("total_prr_cells", choice.total_prr_cells)
          .set("fabric_fraction", choice.fabric_fraction)
          .set("total_bitstream_bytes", choice.total_bitstream_bytes)
          .set("makespan_s", choice.makespan_s);
    } else {
      c.set("reason", choice.reason);
    }
    choices.push_back(std::move(c));
  }
  j.set("choices", std::move(choices));
  set_stats(j, r.stats);
  return j;
}

Json to_json(const FaultsResponse& r) {
  Json j = Json::object();
  j.set("device", r.device)
      .set("fault_rate", r.fault_rate)
      .set("fault_seed", r.fault_seed)
      .set("max_retries", r.max_retries)
      .set("makespan_s", r.makespan_s)
      .set("reconfig_count", r.reconfig_count)
      .set("total_reconfig_s", r.total_reconfig_s)
      .set("failed_reconfigs", r.failed_reconfigs)
      .set("dropped_tasks", r.dropped_tasks)
      .set("rescheduled_tasks", r.rescheduled_tasks)
      .set("retry_attempts", r.retry_attempts)
      .set("total_retry_backoff_s", r.total_retry_backoff_s)
      .set("total_fault_wasted_s", r.total_fault_wasted_s)
      .set("total_penalty_s", r.total_penalty_s)
      .set("injected_faults", r.injected_faults)
      .set("injected_stalls", r.injected_stalls)
      .set("effective_reconfig_s", r.effective_reconfig_s);
  set_stats(j, r.stats);
  return j;
}

Json to_json(const DevicesResponse& r) {
  Json j = Json::object();
  Json devices = Json::array();
  for (const DeviceSummary& dev : r.devices) {
    Json d = Json::object();
    d.set("name", dev.name)
        .set("family", dev.family)
        .set("rows", dev.rows)
        .set("clb_cols", dev.clb_cols)
        .set("dsp_cols", dev.dsp_cols)
        .set("bram_cols", dev.bram_cols)
        .set("clbs", dev.clbs)
        .set("dsps", dev.dsps)
        .set("bram36s", dev.bram36s);
    devices.push_back(std::move(d));
  }
  j.set("devices", std::move(devices));
  set_stats(j, r.stats);
  return j;
}

Json to_json(const SynthRequest& r) {
  Json j = Json::object();
  j.set("op", "synth");
  set_source(j, r.source);
  j.set("family", std::string{family_name(r.family)});
  return j;
}

Json to_json(const PlanRequest& r) {
  Json j = Json::object();
  j.set("op", "plan").set("device", r.device);
  set_source(j, r.source);
  j.set("objective", std::string{objective_name(r.objective)})
      .set("shaped", r.shaped)
      .set("cross_check", r.cross_check);
  return j;
}

Json to_json(const BitstreamRequest& r) {
  Json j = Json::object();
  j.set("op", "bitstream").set("device", r.device);
  set_source(j, r.source);
  return j;
}

Json to_json(const ExploreRequest& r) {
  Json j = Json::object();
  j.set("op", "explore")
      .set("device", r.device)
      .set("prms", prms_to_json(r.prms))
      .set("workers", static_cast<u64>(r.workers))
      .set("max_groups", r.max_groups)
      .set("tasks", r.tasks)
      .set("seed", r.seed)
      .set("cross_check", r.cross_check);
  return j;
}

Json to_json(const RankRequest& r) {
  Json j = Json::object();
  j.set("op", "rank")
      .set("prms", prms_to_json(r.prms))
      .set("workers", static_cast<u64>(r.workers))
      .set("tasks", r.tasks)
      .set("seed", r.seed);
  return j;
}

Json to_json(const OptimizeResponse& r) {
  Json j = Json::object();
  j.set("device", r.device)
      .set("prm_count", r.prm_count)
      .set("group_count", r.group_count)
      .set("seed", r.seed)
      .set("greedy_rejected_prms", r.greedy_rejected_prms)
      .set("greedy_rejection_rate", r.greedy_rejection_rate)
      .set("greedy_makespan_s", r.greedy_makespan_s)
      .set("greedy_fragmentation", r.greedy_fragmentation)
      .set("greedy_cost", r.greedy_cost)
      .set("greedy_placed_groups", r.greedy_placed_groups)
      .set("anneal_rejected_prms", r.anneal_rejected_prms)
      .set("anneal_rejection_rate", r.anneal_rejection_rate)
      .set("anneal_makespan_s", r.anneal_makespan_s)
      .set("anneal_fragmentation", r.anneal_fragmentation)
      .set("anneal_cost", r.anneal_cost)
      .set("anneal_placed_groups", r.anneal_placed_groups)
      .set("anneal_relocation_s", r.anneal_relocation_s)
      .set("proposals", r.proposals)
      .set("accepted", r.accepted)
      .set("accepted_swap", r.accepted_swap)
      .set("accepted_relocate", r.accepted_relocate)
      .set("accepted_resize", r.accepted_resize)
      .set("accepted_compact", r.accepted_compact)
      .set("cost_verified", r.cost_verified)
      .set("bitstream_verified", r.bitstream_verified);
  set_stats(j, r.stats);
  return j;
}

Json to_json(const ScheduleResponse& r) {
  Json j = Json::object();
  j.set("device", r.device)
      .set("policy", r.policy)
      .set("slot_count", r.slot_count)
      .set("prm_count", r.prm_count)
      .set("task_count", r.task_count)
      .set("fault_rate", r.fault_rate)
      .set("makespan_s", r.makespan_s)
      .set("throughput_per_s", r.throughput_per_s)
      .set("reuse_hits", r.reuse_hits)
      .set("reconfig_count", r.reconfig_count)
      .set("total_reconfig_s", r.total_reconfig_s)
      .set("reconfig_seconds_per_task", r.reconfig_seconds_per_task)
      .set("deadline_misses", r.deadline_misses)
      .set("cpu_fallbacks", r.cpu_fallbacks)
      .set("prefetches_issued", r.prefetches_issued)
      .set("prefetched_reconfigs", r.prefetched_reconfigs)
      .set("mean_wait_s", r.mean_wait_s)
      .set("mean_turnaround_s", r.mean_turnaround_s);
  if (!r.task_outcomes.empty()) {
    Json tasks = Json::array();
    for (const ScheduleTaskOutcome& t : r.task_outcomes) {
      Json o = Json::object();
      o.set("name", t.name)
          .set("prm", t.prm)
          .set("slot", t.slot)
          .set("cpu_fallback", t.cpu_fallback)
          .set("reconfigured", t.reconfigured)
          .set("prefetched", t.prefetched)
          .set("deadline_miss", t.deadline_miss)
          .set("reconfig_s", t.reconfig_s)
          .set("start_s", t.start_s)
          .set("finish_s", t.finish_s)
          .set("wait_s", t.wait_s);
      tasks.push_back(std::move(o));
    }
    j.set("tasks", std::move(tasks));
  }
  set_stats(j, r.stats);
  return j;
}

Json to_json(const FaultsRequest& r) {
  Json j = Json::object();
  j.set("op", "faults")
      .set("device", r.device)
      .set("prms", prms_to_json(r.prms))
      .set("prr_count", r.prr_count)
      .set("tasks", r.tasks)
      .set("seed", r.seed);
  if (r.fault_rate) j.set("fault_rate", *r.fault_rate);
  if (r.stall_rate) j.set("stall_rate", *r.stall_rate);
  if (r.fault_seed) j.set("fault_seed", *r.fault_seed);
  if (r.max_retries) j.set("max_retries", static_cast<u64>(*r.max_retries));
  j.set("media", r.media).set("recovery", r.recovery).set("strict", r.strict);
  return j;
}

Json to_json(const OptimizeRequest& r) {
  Json j = Json::object();
  j.set("op", "optimize").set("device", r.device);
  if (!r.prms.empty()) j.set("prms", prms_to_json(r.prms));
  if (r.prm_count != 0) j.set("prm_count", r.prm_count);
  if (r.groups != 0) j.set("groups", r.groups);
  j.set("seed", r.seed)
      .set("rounds", r.rounds)
      .set("proposals_per_round", r.proposals_per_round)
      .set("media", r.media);
  if (r.fault_rate) j.set("fault_rate", *r.fault_rate);
  if (r.max_retries) j.set("max_retries", static_cast<u64>(*r.max_retries));
  if (r.workers != 0) j.set("workers", static_cast<u64>(r.workers));
  return j;
}

Json to_json(const ScheduleRequest& r) {
  Json j = Json::object();
  j.set("op", "schedule")
      .set("device", r.device)
      .set("prms", prms_to_json(r.prms))
      .set("slots", r.slots)
      .set("policy", r.policy)
      .set("workload", r.workload);
  if (!r.trace.empty()) j.set("trace", r.trace);
  j.set("tasks", r.tasks)
      .set("seed", r.seed)
      .set("mean_interarrival_s", r.mean_interarrival_s)
      .set("mean_exec_s", r.mean_exec_s)
      .set("deadline_factor", r.deadline_factor)
      .set("media", r.media)
      .set("warm_media", r.warm_media)
      .set("prefetch_rate_hz", r.prefetch_rate_hz);
  if (r.fault_rate) j.set("fault_rate", *r.fault_rate);
  if (r.max_retries) j.set("max_retries", static_cast<u64>(*r.max_retries));
  j.set("cpu_workers", r.cpu_workers)
      .set("cpu_slowdown", r.cpu_slowdown)
      .set("detail", r.detail);
  return j;
}

}  // namespace prcost::api
