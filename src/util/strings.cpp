#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace prcost {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string format_fixed(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 3) {
    bytes /= 1024.0;
    ++unit;
  }
  return format_fixed(bytes, unit == 0 ? 0 : 1) + " " + kUnits[unit];
}

unsigned long long parse_u64(std::string_view s) {
  s = trim(s);
  unsigned long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw ParseError{"parse_u64: integer out of range: '" + std::string{s} +
                     "'"};
  }
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError{"parse_u64: not a non-negative integer: '" +
                     std::string{s} + "'"};
  }
  return value;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double value = 0.0;
  // std::from_chars accepts "inf"/"nan" tokens; the isfinite check below
  // rejects them so a crafted token can never smuggle a NaN into the
  // models ("1e999" already maps to result_out_of_range).
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw ParseError{"parse_double: number out of range: '" + std::string{s} +
                     "'"};
  }
  if (ec != std::errc{} || ptr != s.data() + s.size() || !std::isfinite(value)) {
    throw ParseError{"parse_double: not a finite number: '" + std::string{s} +
                     "'"};
  }
  return value;
}

}  // namespace prcost
