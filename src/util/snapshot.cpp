#include "util/snapshot.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace prcost {
namespace {

constexpr std::array<char, 4> kMagic{'P', 'R', 'C', 'S'};
constexpr u32 kEndianMarker = 0x01020304u;
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8;

/// Reflected CRC-32C byte table (poly 0x82F63B78), built once. Kept local
/// so util does not depend on the bitstream library; snapshot_test pins
/// it bit-identical to the dispatched crc32c_bytes.
struct Crc32cTable {
  std::array<u32, 256> entry{};
  Crc32cTable() {
    for (u32 byte = 0; byte < 256; ++byte) {
      u32 value = byte;
      for (int bit = 0; bit < 8; ++bit) {
        value = (value >> 1) ^ ((value & 1u) ? 0x82F63B78u : 0u);
      }
      entry[byte] = value;
    }
  }
};

const Crc32cTable& crc_table() {
  static const Crc32cTable table;
  return table;
}

[[noreturn]] void malformed(const std::string& path, const std::string& why) {
  throw ParseError{"snapshot '" + path + "': " + why};
}

}  // namespace

u32 snapshot_checksum(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = crc_table();
  u32 state = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    state = (state >> 8) ^ table.entry[(state ^ bytes[i]) & 0xFFu];
  }
  return state ^ 0xFFFFFFFFu;
}

void SnapshotWriter::put_u32(u32 value) { put_bytes(&value, sizeof value); }

void SnapshotWriter::put_u64(u64 value) { put_bytes(&value, sizeof value); }

void SnapshotWriter::put_f64(double value) { put_bytes(&value, sizeof value); }

void SnapshotWriter::put_string(std::string_view value) {
  put_u64(value.size());
  put_bytes(value.data(), value.size());
}

void SnapshotWriter::put_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  payload_.insert(payload_.end(), bytes, bytes + size);
}

void SnapshotWriter::write(const std::string& path, u32 version) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw IoError{"snapshot: cannot write '" + tmp + "'"};
    out.write(kMagic.data(), kMagic.size());
    const auto put = [&out](const void* data, std::size_t size) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(size));
    };
    put(&version, sizeof version);
    put(&kEndianMarker, sizeof kEndianMarker);
    const u64 payload_bytes = payload_.size();
    put(&payload_bytes, sizeof payload_bytes);
    put(payload_.data(), payload_.size());
    const u32 crc = snapshot_checksum(payload_.data(), payload_.size());
    put(&crc, sizeof crc);
    out.flush();
    if (!out) throw IoError{"snapshot: short write to '" + tmp + "'"};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError{"snapshot: cannot publish '" + path + "'"};
  }
}

SnapshotReader::SnapshotReader(const std::string& path, u32 expected_version)
    : path_(path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw IoError{"snapshot: cannot open '" + path + "'"};
  std::vector<unsigned char> file{std::istreambuf_iterator<char>{in},
                                  std::istreambuf_iterator<char>{}};
  if (file.size() < kHeaderBytes + sizeof(u32)) {
    malformed(path_, "truncated header");
  }
  if (std::memcmp(file.data(), kMagic.data(), kMagic.size()) != 0) {
    malformed(path_, "bad magic");
  }
  u32 version = 0;
  u32 endian = 0;
  u64 payload_bytes = 0;
  std::memcpy(&version, file.data() + 4, sizeof version);
  std::memcpy(&endian, file.data() + 8, sizeof endian);
  std::memcpy(&payload_bytes, file.data() + 12, sizeof payload_bytes);
  if (endian != kEndianMarker) {
    malformed(path_, "foreign endianness");
  }
  if (version != expected_version) {
    malformed(path_, "unsupported version " + std::to_string(version) +
                         " (want " + std::to_string(expected_version) + ")");
  }
  if (file.size() != kHeaderBytes + payload_bytes + sizeof(u32)) {
    malformed(path_, "truncated payload");
  }
  u32 stored_crc = 0;
  std::memcpy(&stored_crc, file.data() + kHeaderBytes + payload_bytes,
              sizeof stored_crc);
  const u32 computed =
      snapshot_checksum(file.data() + kHeaderBytes, payload_bytes);
  if (stored_crc != computed) {
    malformed(path_, "checksum mismatch");
  }
  payload_.assign(file.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
                  file.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes +
                                                             payload_bytes));
}

void SnapshotReader::need(std::size_t bytes) const {
  if (remaining() < bytes) malformed(path_, "payload underrun");
}

u32 SnapshotReader::get_u32() {
  u32 value = 0;
  get_bytes(&value, sizeof value);
  return value;
}

u64 SnapshotReader::get_u64() {
  u64 value = 0;
  get_bytes(&value, sizeof value);
  return value;
}

double SnapshotReader::get_f64() {
  double value = 0;
  get_bytes(&value, sizeof value);
  return value;
}

std::string SnapshotReader::get_string() {
  const u64 size = get_u64();
  need(size);
  std::string value{reinterpret_cast<const char*>(payload_.data() + pos_),
                    static_cast<std::size_t>(size)};
  pos_ += size;
  return value;
}

void SnapshotReader::get_bytes(void* out, std::size_t size) {
  need(size);
  std::memcpy(out, payload_.data() + pos_, size);
  pos_ += size;
}

}  // namespace prcost
