// String helpers shared by report emitters/parsers and table rendering.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace prcost {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Fixed-point decimal rendering with `digits` fractional digits.
std::string format_fixed(double v, int digits);

/// Render bytes with a binary-unit suffix, e.g. "82.9 KiB".
std::string format_bytes(double bytes);

/// Parse a non-negative integer; throws ParseError (with the offending
/// token) on junk, sign characters, trailing garbage, or overflow.
unsigned long long parse_u64(std::string_view s);

/// Parse a finite decimal double ("0.25", "1e-3", "-2.5"); throws
/// ParseError (with the offending token) on junk, trailing garbage,
/// overflow, or non-finite results. Hex floats and nan/inf are rejected.
double parse_double(std::string_view s);

}  // namespace prcost
