#include "util/lines.hpp"

namespace prcost {

void LineSplitter::append(std::string_view bytes) {
  // Reclaim consumed prefix before growing: keeps the buffer bounded by
  // the largest in-flight line plus one chunk.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

std::optional<std::string> LineSplitter::next_line() {
  const std::size_t nl = buf_.find('\n', pos_);
  if (nl == std::string::npos) return std::nullopt;
  std::string line = buf_.substr(pos_, nl - pos_);
  pos_ = nl + 1;
  return line;
}

std::string LineSplitter::take_tail() {
  std::string tail = buf_.substr(pos_);
  buf_.clear();
  pos_ = 0;
  return tail;
}

}  // namespace prcost
