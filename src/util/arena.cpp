#include "util/arena.hpp"

#include <cstdint>

namespace prcost {

struct Arena::Chunk {
  Chunk* next = nullptr;
  std::size_t capacity = 0;
  // payload follows the header

  char* data() { return reinterpret_cast<char*>(this + 1); }
};

namespace {

std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::~Arena() {
  Chunk* chunk = head_;
  while (chunk != nullptr) {
    Chunk* next = chunk->next;
    ::operator delete(chunk);
    chunk = next;
  }
}

Arena::Chunk* Arena::new_chunk(std::size_t min_bytes) {
  const std::size_t payload =
      min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
  void* raw = ::operator new(sizeof(Chunk) + payload);
  Chunk* chunk = new (raw) Chunk;
  chunk->capacity = payload;
  capacity_ += payload;
  return chunk;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_ != nullptr) {
      const std::size_t base =
          reinterpret_cast<std::uintptr_t>(current_->data()) + offset_;
      const std::size_t aligned = align_up(base, align) - base + offset_;
      if (aligned + bytes <= current_->capacity) {
        offset_ = aligned + bytes;
        return current_->data() + aligned;
      }
      // Current chunk exhausted: reuse the next retained chunk if it fits
      // (the common steady-state case), else chain a fresh one after it.
      if (current_->next != nullptr &&
          current_->next->capacity >= bytes + align) {
        current_ = current_->next;
        offset_ = 0;
        continue;
      }
      Chunk* fresh = new_chunk(bytes + align);
      fresh->next = current_->next;
      current_->next = fresh;
      current_ = fresh;
      offset_ = 0;
      continue;
    }
    if (head_ == nullptr) head_ = new_chunk(bytes + align);
    current_ = head_;
    offset_ = 0;
  }
}

void Arena::rewind(Marker marker) noexcept {
  current_ = static_cast<Chunk*>(marker.chunk);
  offset_ = marker.offset;
}

void Arena::reset() noexcept {
  current_ = nullptr;
  offset_ = 0;
}

Arena& scratch_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace prcost
