// Versioned, checksummed binary snapshot container for persistent caches.
//
// A snapshot file is a fixed header, a length-prefixed payload, and a
// CRC-32C trailer:
//
//   offset  size  field
//   0       4     magic "PRCS"
//   4       4     format version (caller-chosen, checked exactly on load)
//   8       4     endianness marker 0x01020304 in native byte order
//   12      8     payload size in bytes
//   20      N     payload (sequence of the put_* primitives below)
//   20+N    4     CRC-32C of the payload
//
// Scalar fields inside the payload are stored in native byte order; the
// endianness marker rejects snapshots written on a foreign-endian host
// instead of silently mis-decoding them. Every validation failure - bad
// magic, unknown version, foreign endianness, truncation, checksum
// mismatch, or reading past the payload - throws ParseError so callers
// can fall back to a clean cold start. Writes go to "<path>.tmp" first
// and rename into place, so a crash mid-save never leaves a torn file at
// the published path.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/ints.hpp"

namespace prcost {

/// CRC-32C (Castagnoli) over a byte range - the checksum the container
/// stores. Software table implementation so the base util layer stays
/// free of the bitstream library; bit-identical to crc32c_bytes from
/// bitstream/crc.hpp (locked together by snapshot_test).
u32 snapshot_checksum(const void* data, std::size_t size) noexcept;

/// Accumulates a payload, then writes the framed file atomically.
class SnapshotWriter {
 public:
  void put_u32(u32 value);
  void put_u64(u64 value);
  void put_f64(double value);
  /// u64 length followed by the raw bytes.
  void put_string(std::string_view value);
  /// Raw bytes, no length prefix (caller stores the count separately).
  void put_bytes(const void* data, std::size_t size);

  std::size_t payload_size() const noexcept { return payload_.size(); }

  /// Frame the payload with `version` and publish it at `path` via a
  /// write-to-temp-then-rename. Throws IoError when the file cannot be
  /// written or renamed.
  void write(const std::string& path, u32 version) const;

 private:
  std::vector<unsigned char> payload_;
};

/// Loads and validates a framed file, then decodes the payload in order.
class SnapshotReader {
 public:
  /// Reads the whole file and validates every frame field. Throws IoError
  /// when the file cannot be opened and ParseError on any malformation.
  SnapshotReader(const std::string& path, u32 expected_version);

  u32 get_u32();
  u64 get_u64();
  double get_f64();
  std::string get_string();
  void get_bytes(void* out, std::size_t size);

  /// Payload bytes not yet consumed.
  std::size_t remaining() const noexcept { return payload_.size() - pos_; }

 private:
  void need(std::size_t bytes) const;

  std::string path_;
  std::vector<unsigned char> payload_;
  std::size_t pos_ = 0;
};

}  // namespace prcost
