#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace prcost {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  const std::scoped_lock lock{g_sink_mutex};
  std::clog << "[prcost " << level_tag(level) << "] " << msg << '\n';
}

}  // namespace prcost
