#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>

#include "util/stopwatch.hpp"

namespace prcost {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off  ";
  }
  return "?";
}

/// Compact sequential thread id (t1, t2, ...), assigned on first log call
/// from a thread. Matches the obs tracer's idea of small per-thread ids.
unsigned this_thread_log_id() {
  static std::atomic<unsigned> next{1};
  thread_local const unsigned id = next.fetch_add(1);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

void log_line(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  // Monotonic seconds since the shared epoch, so "+12.345678" lines up
  // with trace span timestamps.
  const double elapsed_s = static_cast<double>(monotonic_ns()) / 1e9;
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "%+.6f", elapsed_s);
  std::ostream& sink =
      level >= LogLevel::kWarn ? std::cerr : std::clog;
  const std::scoped_lock lock{g_sink_mutex};
  sink << "[prcost " << level_tag(level) << ' ' << stamp << " t"
       << this_thread_log_id() << "] " << msg << '\n';
}

}  // namespace prcost
