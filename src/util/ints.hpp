// Small integer helpers used throughout the cost models.
//
// The paper's equations (1)-(7) and (18)-(23) are ceiling-divisions and
// products of small non-negative quantities; we keep them in unsigned
// 64-bit arithmetic and fail loudly on contract violations instead of
// silently wrapping.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <type_traits>

namespace prcost {

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// ceil(num / den) for non-negative integers; den must be > 0.
///
/// This is the ceiling operator that appears in Eqs. (1)-(5) of the paper
/// (e.g. CLB_req = ceil(LUT_FF_req / LUT_CLB)).
constexpr u64 ceil_div(u64 num, u64 den) {
  if (den == 0) throw std::invalid_argument{"ceil_div: zero denominator"};
  return num / den + (num % den != 0 ? 1 : 0);
}

/// Multiply with overflow check; throws std::overflow_error on wrap.
constexpr u64 checked_mul(u64 a, u64 b) {
  if (a != 0 && b > std::numeric_limits<u64>::max() / a) {
    throw std::overflow_error{"checked_mul: overflow"};
  }
  return a * b;
}

/// Add with overflow check; throws std::overflow_error on wrap.
constexpr u64 checked_add(u64 a, u64 b) {
  if (b > std::numeric_limits<u64>::max() - a) {
    throw std::overflow_error{"checked_add: overflow"};
  }
  return a + b;
}

/// Checked narrowing conversion (Core Guidelines ES.46 style).
template <typename To, typename From>
constexpr To narrow(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  const auto result = static_cast<To>(v);
  if (static_cast<From>(result) != v ||
      ((result < To{}) != (v < From{}))) {
    throw std::out_of_range{"narrow: value does not fit target type"};
  }
  return result;
}

/// Percentage (0-100) of used/available; returns 0 when nothing is
/// available (matches the paper's RU tables, which report 0% for resource
/// types absent from a PRR).
constexpr double percent(u64 used, u64 available) {
  if (available == 0) return 0.0;
  return 100.0 * static_cast<double>(used) / static_cast<double>(available);
}

}  // namespace prcost
