#include "util/csv.hpp"

namespace prcost {

std::string csv_quote(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_quote(fields[i]);
  }
  out_ << '\n';
}

}  // namespace prcost
