// Row-padded occupancy bitmask over a rows x cols cell grid.
//
// One bit per cell, row-major, each row padded to whole 64-bit words so a
// rectangle test is a handful of masked word compares instead of a
// per-cell scan. This is the occupancy substrate shared by the
// floorplanner (src/cost), the HTR defragmenter (src/htr) and the joint
// optimizer (src/opt) - previously each carried its own copy of the
// masked-word iteration.
#pragma once

#include <vector>

#include "util/ints.hpp"

namespace prcost {

class BitGrid {
 public:
  BitGrid() = default;
  BitGrid(u32 rows, u32 cols)
      : rows_(rows),
        cols_(cols),
        words_per_row_((cols + 63) / 64),
        words_(static_cast<std::size_t>(rows) * words_per_row_, 0) {}

  u32 rows() const { return rows_; }
  u32 cols() const { return cols_; }

  /// True iff the rectangle lies inside the grid and every cell is clear.
  bool rect_free(u32 first_col, u32 width, u32 first_row, u32 height) const;

  /// Set (value = true) or clear every cell of the rectangle. The
  /// rectangle must be inside the grid (callers validate; debug-checked).
  void set_rect(u32 first_col, u32 width, u32 first_row, u32 height,
                bool value);

  /// One cell's occupancy bit (false outside the grid).
  bool test(u32 col, u32 row) const;

  /// Number of set cells across the whole grid.
  u64 count_set() const;

  /// Area (cells) of the largest fully clear axis-aligned rectangle -
  /// the classic fragmentation quality metric: it bounds the biggest
  /// rectangular region placeable next. O(rows x cols) via per-row free
  /// heights and a monotonic-stack largest-rectangle-in-histogram sweep
  /// (the brute-force rectangle enumeration it replaced was O(R^2 C^2)).
  u64 largest_clear_rect() const;

 private:
  u32 rows_ = 0;
  u32 cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<u64> words_;
};

}  // namespace prcost
