// Minimal JSON document model for the API layer: parse, build, serialize.
//
// Self-contained (no third-party dependency) and deliberately small: the
// typed request/response layer (src/api) and the JSONL batch front-end
// need exactly "parse one line into a value, walk it, build a response,
// dump it compactly". Objects preserve insertion order so serialized
// responses are deterministic and diffable across runs.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/ints.hpp"

namespace prcost {

/// One JSON value: null, bool, integer, double, string, array, or object.
/// Integers are kept separately from doubles so u64 counts (bitstream
/// bytes, cell totals) round-trip exactly.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}             // NOLINT(runtime/explicit)
  Json(bool b) : value_(b) {}                           // NOLINT(runtime/explicit)
  Json(int v) : value_(static_cast<i64>(v)) {}          // NOLINT(runtime/explicit)
  Json(i64 v) : value_(v) {}                            // NOLINT(runtime/explicit)
  Json(u64 v);                                          // NOLINT(runtime/explicit)
  Json(u32 v) : value_(static_cast<i64>(v)) {}          // NOLINT(runtime/explicit)
  Json(double v) : value_(v) {}                         // NOLINT(runtime/explicit)
  Json(const char* s) : value_(std::string{s}) {}       // NOLINT(runtime/explicit)
  Json(std::string s) : value_(std::move(s)) {}         // NOLINT(runtime/explicit)
  Json(std::string_view s) : value_(std::string{s}) {}  // NOLINT(runtime/explicit)

  static Json array() { return Json{Array{}}; }
  static Json object() { return Json{Object{}}; }

  Kind kind() const;
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_object() const { return kind() == Kind::kObject; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_number() const {
    return kind() == Kind::kInt || kind() == Kind::kDouble;
  }

  /// Typed accessors; throw ParseError naming the expected kind so batch
  /// request decoding reports "field X: expected string" style messages.
  bool as_bool() const;
  i64 as_i64() const;
  u64 as_u64() const;           ///< as_i64 plus a non-negative check
  double as_double() const;     ///< accepts kInt too
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object: append `key` (or overwrite an existing one), returning *this
  /// so response builders can chain.
  Json& set(std::string key, Json value);
  /// Object: member pointer or nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  /// Array: append.
  void push_back(Json value);

  /// Compact serialization (no whitespace, no trailing newline). Doubles
  /// use shortest round-trip form; non-finite doubles serialize as null.
  std::string dump() const;

  /// Parse a complete JSON document; throws ParseError with a byte offset
  /// on malformed input or trailing garbage.
  static Json parse(std::string_view text);

 private:
  explicit Json(Array a) : value_(std::move(a)) {}
  explicit Json(Object o) : value_(std::move(o)) {}

  std::variant<std::nullptr_t, bool, i64, double, std::string, Array, Object>
      value_;
};

}  // namespace prcost
