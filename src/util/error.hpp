// Library-wide exception types and the structured error taxonomy.
//
// Every error carries a machine-readable ErrorCode so callers (the CLI,
// the JSONL batch front-end, embedding services) can map failures to
// stable wire names and exit codes instead of string-matching messages.
// The taxonomy distinguishes *usage* errors (the request itself is
// malformed - the only category that earns the CLI usage banner and exit
// code 2) from *runtime* errors (a well-formed request that cannot be
// satisfied: unknown name, unreadable file, infeasible model - exit 1).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace prcost {

/// Machine-readable error category. Wire names (error_code_name) are part
/// of the batch response schema documented in README.md - append only.
enum class ErrorCode {
  kInternal = 0,  ///< unexpected condition (bug escape hatch)
  kUsage,         ///< malformed request/invocation (bad flag, missing arg)
  kNotFound,      ///< a named entity is absent (device, PRM, op)
  kInfeasible,    ///< the model says no (no feasible PRR on the fabric)
  kIo,            ///< a file could not be opened, read, or written
  kParse,         ///< malformed input content (report, netlist, JSON...)
  kContract,      ///< a model/device contract was violated
  kFault,         ///< reconfiguration failed permanently (retries exhausted)
  kOverloaded,    ///< the serving admission queue shed the request
  kDeadline,      ///< the request's deadline expired before completion
};

/// Stable lower-case wire name, e.g. "not_found".
constexpr std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInternal:   return "internal";
    case ErrorCode::kUsage:      return "usage";
    case ErrorCode::kNotFound:   return "not_found";
    case ErrorCode::kInfeasible: return "infeasible";
    case ErrorCode::kIo:         return "io";
    case ErrorCode::kParse:      return "parse";
    case ErrorCode::kContract:   return "contract";
    case ErrorCode::kFault:      return "fault";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadline:   return "deadline";
  }
  return "internal";
}

/// Base class for all prcost errors; carries a human-readable message and
/// the taxonomy code.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::kInternal)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// A model/device contract was violated (bad parameter, unknown family...).
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what)
      : Error(what, ErrorCode::kContract) {}

 protected:
  /// For subclasses refining the category (NotFoundError).
  ContractError(const std::string& what, ErrorCode code) : Error(what, code) {}
};

/// Malformed input while parsing (synthesis report, bitstream, JSON...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what)
      : Error(what, ErrorCode::kParse) {}
};

/// The request itself is malformed: unknown command, bad flag, missing
/// argument. The only category the CLI answers with the usage banner and
/// exit code 2.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what)
      : Error(what, ErrorCode::kUsage) {}
};

/// A named entity is absent: unknown device, unknown PRM, unknown batch
/// op. Derives from ContractError because lookups (DeviceDb::get) used to
/// throw that; existing catch sites keep working.
class NotFoundError : public ContractError {
 public:
  explicit NotFoundError(const std::string& what)
      : ContractError(what, ErrorCode::kNotFound) {}
};

/// A well-formed request the model cannot satisfy (no feasible PRR).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what)
      : Error(what, ErrorCode::kInfeasible) {}
};

/// A file could not be opened, read, or written.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what, ErrorCode::kIo) {}
};

/// A reconfiguration transfer failed permanently: every retry delivered a
/// corrupted bitstream or timed out. Raised only by strict fault-injection
/// runs; fault-tolerant paths record the failure and degrade instead.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what)
      : Error(what, ErrorCode::kFault) {}
};

/// The serving admission queue was full and load-shedding rejected the
/// request before any work was done. Clients may retry with backoff.
class OverloadedError : public Error {
 public:
  explicit OverloadedError(const std::string& what)
      : Error(what, ErrorCode::kOverloaded) {}
};

/// The request's deadline expired; raised at a phase boundary (no work is
/// cancelled mid-phase), so partial results are never emitted.
class DeadlineError : public Error {
 public:
  explicit DeadlineError(const std::string& what)
      : Error(what, ErrorCode::kDeadline) {}
};

}  // namespace prcost
