// Library-wide exception types.
#pragma once

#include <stdexcept>
#include <string>

namespace prcost {

/// Base class for all prcost errors; carries a human-readable message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A model/device contract was violated (bad parameter, unknown family...).
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

/// Malformed input while parsing (synthesis report, bitstream...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

}  // namespace prcost
