#include "util/stopwatch.hpp"

#include <cmath>
#include <sstream>

#include "util/strings.hpp"

namespace prcost {

u64 monotonic_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

std::string format_minutes_seconds(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto whole_minutes = static_cast<long long>(seconds / 60.0);
  const double rem = seconds - static_cast<double>(whole_minutes) * 60.0;
  std::ostringstream os;
  if (whole_minutes > 0) os << whole_minutes << "m";
  os << format_fixed(rem, rem < 1.0 ? 6 : 3) << "s";
  return os.str();
}

std::string Stopwatch::pretty() const { return format_minutes_seconds(seconds()); }

}  // namespace prcost
