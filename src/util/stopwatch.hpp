// Wall-clock stopwatch used by the Table VIII flow-runtime bench.
#pragma once

#include <chrono>
#include <string>

#include "util/ints.hpp"

namespace prcost {

/// Nanoseconds on the steady clock since a process-wide epoch (the first
/// call). Shared by the logger's line timestamps and the tracer's span
/// timestamps so log lines correlate with trace spans.
u64 monotonic_ns() noexcept;

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time as "MmSS.SSSs" (e.g. "4m25.000s") to mirror the paper's
  /// Table VIII minutes/seconds notation.
  std::string pretty() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Format a duration in seconds as the paper's "XmYYs" notation.
std::string format_minutes_seconds(double seconds);

}  // namespace prcost
