#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace prcost {
namespace {

const char* kind_name(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::kNull:   return "null";
    case Json::Kind::kBool:   return "bool";
    case Json::Kind::kInt:    return "int";
    case Json::Kind::kDouble: return "double";
    case Json::Kind::kString: return "string";
    case Json::Kind::kArray:  return "array";
    case Json::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void wrong_kind(std::string_view wanted, Json::Kind got) {
  throw ParseError{"Json: expected " + std::string{wanted} + ", got " +
                   kind_name(got)};
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

/// Recursive-descent parser over a string_view; `pos_` is the byte offset
/// reported in ParseError messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError{"Json: " + what + " at offset " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json{parse_string()};
      case 't':
        if (consume_literal("true")) return Json{true};
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json{false};
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json{nullptr};
        fail("invalid literal");
      default:  return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return object; }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return object;
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return array; }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out += c; continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':  out += '"'; break;
        case '\\': out += '\\'; break;
        case '/':  out += '/'; break;
        case 'b':  out += '\b'; break;
        case 'f':  out += '\f'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are rare
          // in request traffic; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("expected a value");
    const bool integral =
        token.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      i64 value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json{value};
      }
      // fall through (overflow) to double
    }
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail("malformed number '" + std::string{token} + "'");
    }
    return Json{value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_to(const Json& value, std::string& out);

}  // namespace

Json::Json(u64 v) {
  if (v > static_cast<u64>(std::numeric_limits<i64>::max())) {
    // Counts this large never occur in practice; degrade to double rather
    // than wrap.
    value_ = static_cast<double>(v);
  } else {
    value_ = static_cast<i64>(v);
  }
}

Json::Kind Json::kind() const {
  return static_cast<Kind>(value_.index());
}

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  wrong_kind("bool", kind());
}

i64 Json::as_i64() const {
  if (const i64* v = std::get_if<i64>(&value_)) return *v;
  wrong_kind("int", kind());
}

u64 Json::as_u64() const {
  const i64 v = as_i64();
  if (v < 0) throw ParseError{"Json: expected a non-negative integer"};
  return static_cast<u64>(v);
}

double Json::as_double() const {
  if (const double* v = std::get_if<double>(&value_)) return *v;
  if (const i64* v = std::get_if<i64>(&value_)) {
    return static_cast<double>(*v);
  }
  wrong_kind("number", kind());
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  wrong_kind("string", kind());
}

const Json::Array& Json::as_array() const {
  if (const Array* a = std::get_if<Array>(&value_)) return *a;
  wrong_kind("array", kind());
}

const Json::Object& Json::as_object() const {
  if (const Object* o = std::get_if<Object>(&value_)) return *o;
  wrong_kind("object", kind());
}

Json& Json::set(std::string key, Json value) {
  if (!is_object()) wrong_kind("object", kind());
  Object& members = std::get<Object>(value_);
  for (Member& member : members) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  members.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  const Object* members = std::get_if<Object>(&value_);
  if (members == nullptr) return nullptr;
  for (const Member& member : *members) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void Json::push_back(Json value) {
  if (!is_array()) wrong_kind("array", kind());
  std::get<Array>(value_).push_back(std::move(value));
}

namespace {

void dump_to(const Json& value, std::string& out) {
  switch (value.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case Json::Kind::kInt: {
      char buf[24];
      const auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof buf, value.as_i64());
      out.append(buf, ptr);
      return;
    }
    case Json::Kind::kDouble: {
      const double v = value.as_double();
      if (!std::isfinite(v)) {
        out += "null";  // JSON has no Inf/NaN
        return;
      }
      char buf[32];
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
      out.append(buf, ptr);
      return;
    }
    case Json::Kind::kString:
      append_escaped(out, value.as_string());
      return;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& element : value.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_to(element, out);
      }
      out += ']';
      return;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.as_object()) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, key);
        out += ':';
        dump_to(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser{text}.parse_document();
}

}  // namespace prcost
