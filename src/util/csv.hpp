// CSV emission for bench outputs, so reproduced tables can be diffed or
// plotted without re-running the harness.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace prcost {

/// Streams RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Quote a single CSV field if needed.
std::string csv_quote(const std::string& field);

}  // namespace prcost
