#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace prcost {
namespace {

void append_padded(std::ostringstream& os, const std::string& cell,
                   std::size_t width) {
  os << cell;
  for (std::size_t i = cell.size(); i < width; ++i) os << ' ';
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::vector<std::size_t> TextTable::column_widths() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

std::string TextTable::to_ascii() const {
  const auto widths = column_widths();
  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << ' ';
      append_padded(os, c < row.size() ? row[c] : std::string{}, widths[c]);
      os << " |";
    }
    os << '\n';
  };
  rule();
  emit_row(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      emit_row(row);
    }
  }
  rule();
  return os.str();
}

std::string TextTable::to_markdown() const {
  const auto widths = column_widths();
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << ' ';
      append_padded(os, c < row.size() ? row[c] : std::string{}, widths[c]);
      os << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (const auto w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (!row.empty()) emit_row(row);
  }
  return os.str();
}

}  // namespace prcost
