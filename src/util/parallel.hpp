// Data-parallel helper for DSE sweeps and property-style test sweeps.
//
// Follows the OpenMP worksharing idea (static chunking over an index range)
// but implemented with std::thread so the library has no extra build
// dependencies. Bodies must be free of shared mutable state; results are
// written to per-index slots by the caller.
#pragma once

#include <cstddef>
#include <functional>

namespace prcost {

/// Number of workers parallel_for will use (>= 1; hardware concurrency).
std::size_t parallel_worker_count();

/// Invoke body(i) for i in [0, count), distributing contiguous chunks over
/// `workers` threads (0 = auto). Exceptions from bodies are captured and the
/// first one is rethrown on the calling thread after the pool joins.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t workers = 0);

}  // namespace prcost
