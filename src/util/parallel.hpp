// Data-parallel helper for DSE sweeps and property-style test sweeps.
//
// parallel_for runs on a lazily-started persistent worker pool (one pool
// per process, hardware_concurrency - 1 threads; the calling thread always
// participates) instead of spawning fresh threads per call. Chunks are
// claimed dynamically off a shared atomic counter, so the highly skewed
// item costs of DSE sweeps (early-infeasible partitions vs. full
// simulations) load-balance across workers. Bodies must be free of shared
// mutable state; results are written to per-index slots by the caller.
#pragma once

#include <cstddef>
#include <functional>

namespace prcost {

/// Number of workers parallel_for will use (>= 1; hardware concurrency).
std::size_t parallel_worker_count();

/// Invoke body(i) for i in [0, count), distributing dynamically sized
/// chunks over at most `workers` threads (0 = auto). Exceptions from
/// bodies are captured and the first one is rethrown on the calling thread
/// after the batch drains; once a body throws, workers stop claiming new
/// chunks. Nested calls (a body invoking parallel_for) are safe: they run
/// serially inline on the calling thread, so the pool can never deadlock
/// on itself.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t workers = 0);

/// True while the calling thread is executing a parallel_for body (on the
/// pool or as the participating submitter). Nested parallel_for calls
/// observe this and degrade to the serial path.
bool in_parallel_region() noexcept;

/// Opaque per-task context pointer, propagated to every worker that joins a
/// parallel_for batch: workers see the submitter's context for the duration
/// of their participation and their previous context is restored when the
/// batch drains. The observability layer uses this to attribute work done
/// on pool threads back to the request that submitted it; the pointer is
/// never dereferenced by the pool itself.
void* task_context() noexcept;
void set_task_context(void* context) noexcept;

}  // namespace prcost
