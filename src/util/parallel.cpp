#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace prcost {
namespace {

// Set while a thread executes batch chunks (pool worker or submitter).
thread_local bool t_in_region = false;

// Opaque per-task context (see parallel.hpp). Owned by the caller; the
// pool only copies the pointer from the submitter to joining workers.
thread_local void* t_task_context = nullptr;

/// One parallel_for invocation, shared between the submitting thread and
/// the pool workers that join it. Lives on the submitter's stack; workers
/// only reach it through Pool::batch_ under the pool mutex, and the
/// submitter does not return before every joined worker has left.
struct Batch {
  std::size_t count = 0;
  std::size_t grain = 1;
  void* context = nullptr;             ///< submitter's task_context
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};    ///< chunk claim counter
  std::atomic<bool> failed{false};     ///< short-circuit after first throw
  std::size_t in_flight = 0;           ///< joined workers (pool mutex)
  std::exception_ptr error;            ///< first error (error_mu)
  std::mutex error_mu;
};

/// Claim and run chunks until the batch drains (or fails). Runs on both
/// the submitter and the pool workers.
void run_batch(Batch& batch) {
  t_in_region = true;
  // Adopt the submitter's task context so work on this thread is
  // attributed to the submitting request; restored on every exit path.
  void* const saved_context = t_task_context;
  t_task_context = batch.context;
  while (!batch.failed.load(std::memory_order_relaxed)) {
    const std::size_t begin =
        batch.next.fetch_add(batch.grain, std::memory_order_relaxed);
    if (begin >= batch.count) break;
    const std::size_t end = std::min(batch.count, begin + batch.grain);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*batch.body)(i);
      } catch (...) {
        {
          const std::scoped_lock lock{batch.error_mu};
          if (!batch.error) batch.error = std::current_exception();
        }
        batch.failed.store(true, std::memory_order_relaxed);
        t_task_context = saved_context;
        t_in_region = false;
        return;
      }
    }
  }
  t_task_context = saved_context;
  t_in_region = false;
}

/// Lazily started persistent worker pool. One batch runs at a time;
/// concurrent submitters queue on submit_cv_. Threads are joined when the
/// process-wide instance is destroyed at exit.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(Batch& batch, std::size_t max_helpers) {
    std::unique_lock lock{mu_};
    submit_cv_.wait(lock, [&] { return batch_ == nullptr; });
    batch_ = &batch;
    wanted_ = std::min(max_helpers, threads_.size());
    const bool has_helpers = wanted_ > 0;
    lock.unlock();
    if (has_helpers) work_cv_.notify_all();
    run_batch(batch);  // the submitter is always a participant
    lock.lock();
    done_cv_.wait(lock, [&] { return batch.in_flight == 0; });
    batch_ = nullptr;
    lock.unlock();
    submit_cv_.notify_one();
  }

 private:
  Pool() {
    const std::size_t helpers = parallel_worker_count() - 1;
    threads_.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i) {
      threads_.emplace_back([this] { worker(); });
    }
  }

  ~Pool() {
    {
      const std::scoped_lock lock{mu_};
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& thread : threads_) thread.join();
  }

  void worker() {
    std::unique_lock lock{mu_};
    for (;;) {
      work_cv_.wait(lock,
                    [&] { return stop_ || (batch_ != nullptr && wanted_ > 0); });
      if (stop_) return;
      --wanted_;
      Batch& batch = *batch_;
      ++batch.in_flight;
      lock.unlock();
      run_batch(batch);
      lock.lock();
      if (--batch.in_flight == 0) done_cv_.notify_one();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;    ///< workers wait for a batch
  std::condition_variable done_cv_;    ///< submitter waits for stragglers
  std::condition_variable submit_cv_;  ///< next submitter waits its turn
  Batch* batch_ = nullptr;             ///< current batch (mu_)
  std::size_t wanted_ = 0;             ///< helper slots left to claim (mu_)
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace

std::size_t parallel_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool in_parallel_region() noexcept { return t_in_region; }

void* task_context() noexcept { return t_task_context; }

void set_task_context(void* context) noexcept { t_task_context = context; }

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers) {
  if (count == 0) return;
  if (workers == 0) workers = parallel_worker_count();
  workers = std::min(workers, count);
  if (workers <= 1 || t_in_region) {
    // Serial path; also taken for nested calls so a body that fans out
    // again cannot wait on the pool it is itself running on. The region
    // flag is still set so in_parallel_region() is true inside any
    // parallel_for body, whatever path executed it.
    const bool was_in_region = t_in_region;
    t_in_region = true;
    try {
      for (std::size_t i = 0; i < count; ++i) body(i);
    } catch (...) {
      t_in_region = was_in_region;
      throw;
    }
    t_in_region = was_in_region;
    return;
  }

  Batch batch;
  batch.count = count;
  batch.context = t_task_context;
  batch.body = &body;
  // Dynamic scheduling with modest grain: sweep items (full search flows,
  // simulated anneals) have highly variable cost.
  batch.grain = std::max<std::size_t>(1, count / (workers * 8));
  Pool::instance().run(batch, workers - 1);
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace prcost
