#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace prcost {

std::size_t parallel_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers) {
  if (count == 0) return;
  if (workers == 0) workers = parallel_worker_count();
  workers = std::min(workers, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  // Dynamic scheduling with modest grain: sweep items (full search flows,
  // simulated anneals) have highly variable cost.
  const std::size_t grain = std::max<std::size_t>(1, count / (workers * 8));

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t begin = next.fetch_add(grain);
        if (begin >= count) return;
        const std::size_t end = std::min(count, begin + grain);
        for (std::size_t i = begin; i < end; ++i) {
          try {
            body(i);
          } catch (...) {
            const std::scoped_lock lock{error_mutex};
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace prcost
