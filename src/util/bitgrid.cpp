#include "util/bitgrid.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace prcost {
namespace {

/// Invoke f(word_in_row, mask) for every 64-bit word overlapped by columns
/// [first_col, first_col + width); mask has the overlapped bits set.
/// Rectangle operations apply the same masks to each covered row.
template <typename F>
void for_each_word(u32 first_col, u32 width, F&& f) {
  const u32 end = first_col + width;
  for (u32 word = first_col / 64; word * 64 < end; ++word) {
    const u32 lo = std::max(first_col, word * 64);
    const u32 hi = std::min(end, (word + 1) * 64);
    const u32 len = hi - lo;
    const u64 bits = len == 64 ? ~u64{0} : (u64{1} << len) - 1;
    f(word, bits << (lo - word * 64));
  }
}

}  // namespace

bool BitGrid::rect_free(u32 first_col, u32 width, u32 first_row,
                        u32 height) const {
  if (first_col + width > cols_ || first_row + height > rows_) return false;
  bool is_free = true;
  for_each_word(first_col, width, [&](u32 word, u64 mask) {
    const u64* row_word = words_.data() + first_row * words_per_row_ + word;
    for (u32 r = 0; r < height; ++r, row_word += words_per_row_) {
      if (*row_word & mask) {
        is_free = false;
        return;
      }
    }
  });
  return is_free;
}

void BitGrid::set_rect(u32 first_col, u32 width, u32 first_row, u32 height,
                       bool value) {
  assert(first_col + width <= cols_ && first_row + height <= rows_);
  for_each_word(first_col, width, [&](u32 word, u64 mask) {
    u64* row_word = words_.data() + first_row * words_per_row_ + word;
    for (u32 r = 0; r < height; ++r, row_word += words_per_row_) {
      if (value) {
        *row_word |= mask;
      } else {
        *row_word &= ~mask;
      }
    }
  });
}

bool BitGrid::test(u32 col, u32 row) const {
  if (col >= cols_ || row >= rows_) return false;
  const u64 word = words_[row * words_per_row_ + col / 64];
  return (word >> (col % 64)) & 1;
}

u64 BitGrid::count_set() const {
  u64 set = 0;
  for (const u64 word : words_) set += static_cast<u64>(std::popcount(word));
  return set;
}

u64 BitGrid::largest_clear_rect() const {
  // heights[c] = number of consecutive clear cells ending at the current
  // row in column c; per row, the best rectangle through that row is the
  // largest rectangle under the heights histogram (monotonic stack).
  std::vector<u32> heights(cols_, 0);
  struct Bar {
    u32 start;   // leftmost column this height extends back to
    u32 height;
  };
  std::vector<Bar> stack;  // strictly ascending heights
  stack.reserve(cols_ + 1);
  u64 best = 0;
  for (u32 row = 0; row < rows_; ++row) {
    for (u32 col = 0; col < cols_; ++col) {
      heights[col] = test(col, row) ? 0 : heights[col] + 1;
    }
    stack.clear();
    for (u32 col = 0; col <= cols_; ++col) {
      const u32 h = col < cols_ ? heights[col] : 0;  // sentinel flushes all
      u32 start = col;
      while (!stack.empty() && stack.back().height >= h) {
        const Bar bar = stack.back();
        stack.pop_back();
        best = std::max(best, u64{bar.height} * (col - bar.start));
        start = bar.start;  // the new bar reaches back over the popped run
      }
      if (col < cols_) stack.push_back({start, h});
    }
  }
  return best;
}

}  // namespace prcost
