// Incremental newline framing, shared by every JSONL entry point.
//
// A LineSplitter accumulates arbitrary byte chunks (nonblocking socket
// reads, block reads off a batch stream) and hands back complete
// '\n'-terminated lines as they become available, with std::getline
// semantics: the terminator is stripped and a trailing chunk without a
// final newline still counts as one last line (take_tail at EOF). The
// serve event loop and the streaming `prcost batch` front-end share this
// one implementation so their framing can never diverge.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace prcost {

class LineSplitter {
 public:
  /// Append a chunk of bytes to the frame buffer.
  void append(std::string_view bytes);

  /// Extract the next complete line (terminator stripped), or nullopt when
  /// no full line is buffered. Consumed bytes are reclaimed lazily.
  std::optional<std::string> next_line();

  /// The partial line buffered past the last '\n' (EOF handling: a
  /// non-empty tail is the final line). Leaves the splitter empty.
  std::string take_tail();

  /// Bytes currently buffered but not yet returned as lines (the partial
  /// tail plus any complete-but-unextracted lines).
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< start of unconsumed bytes in buf_
};

}  // namespace prcost
