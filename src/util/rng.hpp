// Deterministic xoshiro256** PRNG (public-domain algorithm by Blackman &
// Vigna). Every stochastic component in prcost (annealer, workload
// generators) takes an explicit seed and uses this engine, so all bench
// results are reproducible bit-for-bit across platforms.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace prcost {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Modulo reduction is fine here: the
  /// bias for the small bounds this library uses (< 2^32) is < 2^-32 and
  /// all consumers are simulators, not statistics.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    return operator()() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean) {
    // Inverse-CDF sampling; uniform01() < 1 so the log argument is > 0.
    return -mean * std::log(1.0 - uniform01());
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace prcost
