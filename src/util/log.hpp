// Minimal leveled logger, safe for concurrent use. kDebug/kInfo go to
// stdout's log stream (std::clog), kWarn/kError to stderr. Every line is
// prefixed with a monotonic timestamp (same epoch as obs trace spans — see
// util/stopwatch.hpp monotonic_ns) and a compact thread id, so log lines
// correlate with trace spans and with each other across threads.
//
// The library itself logs sparingly (searches, simulators); benches and
// examples raise the level to Info for progress visibility.
#pragma once

#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace prcost {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug"/"info"/"warn"/"error"/"off" -> level (CLI --log-level flag).
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Emit one line at `level` (thread-safe; appends '\n').
void log_line(LogLevel level, std::string_view msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace prcost
