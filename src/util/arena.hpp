// Bump-pointer arena for allocation-free hot loops.
//
// The steady-state request path (warm caches, repeated requirements) must
// not touch the heap: the operator-new hooks in obs/request_stats.cpp
// count every allocation against the active request, and the zero-alloc
// test holds that count at zero. Staging containers that grow and die
// within one call (candidate lists in the PRR search, cross-check fanout
// tables in the Engine) instead borrow memory from a thread-local arena:
//
//   - Arena hands out pointers by bumping a cursor through a chain of
//     chunks. Chunks are retained across rewind()/reset(), so after the
//     first (cold) call a thread's arena never grows again and every
//     subsequent "allocation" is a pointer bump.
//   - ScratchScope marks the calling thread's arena on entry and rewinds
//     it on exit; scopes nest (each rewinds to its own mark).
//   - ArenaAllocator adapts an Arena to the std allocator interface so
//     std::vector / std::set can stage into it; deallocate is a no-op
//     (memory is reclaimed wholesale by the scope rewind).
//
// Arena memory is obtained through operator new on purpose: a cold-path
// chunk growth is a real allocation and should be visible to the request
// counters; the warm path never grows and stays at zero.
#pragma once

#include <cstddef>
#include <new>

namespace prcost {

/// Chunked bump allocator. Not thread-safe; use one per thread (see
/// scratch_arena) or confine to one owner.
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024) noexcept
      : chunk_bytes_(chunk_bytes < kMinChunk ? kMinChunk : chunk_bytes) {}
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned allocation; never returns nullptr (throws std::bad_alloc).
  void* allocate(std::size_t bytes, std::size_t align);

  /// A rewind point: everything allocated after mark() is reclaimed by
  /// rewind(). Chunks are kept for reuse, so rewinding never frees.
  struct Marker {
    void* chunk = nullptr;
    std::size_t offset = 0;
  };
  Marker mark() const noexcept { return Marker{current_, offset_}; }
  void rewind(Marker marker) noexcept;

  /// Rewind to empty (chunks retained).
  void reset() noexcept;

  /// Total bytes of chunk capacity held (monotone until destruction).
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  static constexpr std::size_t kMinChunk = 4096;

  struct Chunk;
  Chunk* new_chunk(std::size_t min_bytes);

  Chunk* head_ = nullptr;     ///< first chunk in the chain
  Chunk* current_ = nullptr;  ///< chunk the cursor is in (nullptr = empty)
  std::size_t offset_ = 0;    ///< cursor within current_
  std::size_t chunk_bytes_;
  std::size_t capacity_ = 0;
};

/// The calling thread's scratch arena (lazily constructed, lives for the
/// thread). Use through ScratchScope so nested users compose.
Arena& scratch_arena();

/// RAII mark/rewind of the calling thread's scratch arena.
class ScratchScope {
 public:
  ScratchScope() noexcept
      : arena_(scratch_arena()), marker_(arena_.mark()) {}
  ~ScratchScope() { arena_.rewind(marker_); }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  Arena& arena() noexcept { return arena_; }

 private:
  Arena& arena_;
  Arena::Marker marker_;
};

/// std allocator adapter over an Arena. deallocate is a no-op: lifetime
/// is the enclosing ScratchScope (or an explicit reset).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena_) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena_;
  }

 private:
  template <typename U>
  friend class ArenaAllocator;
  Arena* arena_;
};

}  // namespace prcost
