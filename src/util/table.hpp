// ASCII / markdown table rendering used by the bench harness to print the
// paper's tables (Tables II, IV, V, VI, VII, VIII).
#pragma once

#include <string>
#include <vector>

namespace prcost {

/// A simple row/column text table. Rows are ragged-tolerant (short rows are
/// padded with empty cells). Numeric formatting is the caller's business.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one data row.
  void add_row(std::vector<std::string> row);

  /// Insert a horizontal separator before the next added row.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Render with box-drawing ASCII (for terminal bench output).
  std::string to_ascii() const;

  /// Render as GitHub-flavored markdown (for EXPERIMENTS.md snippets).
  std::string to_markdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
  std::vector<std::size_t> column_widths() const;
};

}  // namespace prcost
