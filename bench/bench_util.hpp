// Shared helpers for the table-reproduction benches.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace prcost::bench {

/// Print a titled section with the rendered table.
inline void print_table(const std::string& title, const TextTable& table) {
  std::cout << "=== " << title << " ===\n" << table.to_ascii() << '\n';
}

/// Integer-rounded percent string like the paper's tables ("82%").
inline std::string pct(double value) {
  return format_fixed(value, 0) + "%";
}

namespace detail {

/// Opt-in observability for every bench that includes this header, with no
/// per-bench changes: PRCOST_TRACE=1 enables tracing + metrics at program
/// start, and at exit the trace is written to $PRCOST_TRACE_OUT (default
/// "prcost_trace.json") with the span self-time table and metrics on
/// stderr (stdout stays clean for the table output the benches print).
struct ObsEnvSession {
  bool active = false;

  ObsEnvSession() { active = obs::init_from_env(); }

  ~ObsEnvSession() {
    if (!active) return;
    obs::set_tracing(false);
    const char* out_path = std::getenv("PRCOST_TRACE_OUT");
    const std::string path =
        out_path != nullptr && *out_path != '\0' ? out_path
                                                 : "prcost_trace.json";
    std::ofstream out{path};
    obs::write_chrome_trace(out);
    std::cerr << "[prcost obs] wrote trace (" << obs::trace_span_count()
              << " spans) to " << path << "\n"
              << obs::trace_summary_table().to_ascii()
              << obs::registry().to_text();
  }
};

// One instance per bench binary (inline variable): constructed before
// main() runs the workload, destroyed after it finishes.
inline ObsEnvSession g_obs_env_session;

}  // namespace detail

}  // namespace prcost::bench
