// Shared helpers for the table-reproduction benches.
#pragma once

#include <iostream>
#include <string>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace prcost::bench {

/// Print a titled section with the rendered table.
inline void print_table(const std::string& title, const TextTable& table) {
  std::cout << "=== " << title << " ===\n" << table.to_ascii() << '\n';
}

/// Integer-rounded percent string like the paper's tables ("82%").
inline std::string pct(double value) {
  return format_fixed(value, 0) + "%";
}

}  // namespace prcost::bench
