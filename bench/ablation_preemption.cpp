// Ablation I: preemptive hardware multitasking with HTR context
// save/restore (the authors' FCCM'13 use case) vs restart-on-preempt vs no
// preemption. Save/restore costs come from the real context-cost model
// (readback/write traffic of the FIR PRR over the ICAP), not assumptions.
#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "htr/relocation.hpp"
#include "multitask/preemptive.hpp"
#include "paperdata/paper_dataset.hpp"

int main() {
  using namespace prcost;
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;

  // PRM pool with model-derived bitstream and context costs.
  std::vector<PrmInfo> prms;
  double save_s = 0, restore_s = 0;
  for (const char* name : {"FIR", "MIPS", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, "xc5vlx110t");
    const auto plan = find_prr(rec.req, fabric);
    prms.push_back(PrmInfo{name, rec.req, plan->bitstream.total_bytes});
    const ContextCost cost = context_cost(plan->organization, fabric.traits());
    const IcapModel icap = default_icap(Family::kVirtex5);
    save_s = std::max(save_s, icap_write_seconds(icap, cost.save_bytes));
    restore_s = std::max(restore_s,
                         icap_write_seconds(icap, cost.restore_bytes));
  }

  // Mixed-priority workload: long batch tasks + short urgent tasks.
  std::vector<HwTask> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(HwTask{"batch" + std::to_string(i),
                           static_cast<u32>(i % 3), i * 1e-3, 20e-3, 1});
  }
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(HwTask{"urgent" + std::to_string(i),
                           static_cast<u32>(i % 3), 3e-3 + i * 8e-3, 1e-3,
                           7});
  }

  TextTable table{{"mode", "makespan (ms)", "preemptions",
                   "save/restore (ms)", "mean urgent wait (ms)"}};
  for (const PreemptMode mode :
       {PreemptMode::kNoPreemption, PreemptMode::kRestart,
        PreemptMode::kSaveRestore}) {
    PreemptiveConfig config;
    config.prr_count = 2;
    config.mode = mode;
    config.context_save_s = save_s;
    config.context_restore_s = restore_s;
    const PreemptiveResult result =
        simulate_preemptive(prms, tasks, config);
    table.add_row({std::string{preempt_mode_name(mode)},
                   format_fixed(result.makespan_s * 1e3, 2),
                   std::to_string(result.preemptions),
                   format_fixed(result.total_save_restore_s * 1e3, 3),
                   format_fixed(result.mean_high_priority_wait_s * 1e3, 3)});
  }
  bench::print_table(
      "Ablation I: preemption disciplines (context costs from the HTR "
      "model: save " +
          format_fixed(save_s * 1e6, 1) + " us, restore " +
          format_fixed(restore_s * 1e6, 1) + " us)",
      table);
  return 0;
}
