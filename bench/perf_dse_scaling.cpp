// DSE throughput bench: partitions/sec with and without the plan cache.
//
// Builds a repeated-requirements PRM set (a few distinct base PRMs
// replicated to --prms entries, the workload shape the plan cache is
// designed for: many partitions merge groups to the same PrmRequirements),
// explores every partitioning, and reports JSON on stdout:
//
//   {"device":..., "partitions":..., "no_cache":{...}, "cache":{...},
//    "speedup":..., "identical":true}
//
// "identical" cross-checks the acceptance contract that explore() output
// is bit-identical with the cache on and off; the process exits 1 when the
// check fails. Cache hit/miss counts are read from the obs metrics
// registry ("plan_cache.hits"/"plan_cache.misses").
//
//   perf_dse_scaling [--device xc5vlx110t] [--prms 8] [--tasks 30]
//                    [--repeats 3] [--workers 0]
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cost/plan_cache.hpp"
#include "dse/explorer.hpp"
#include "device/device_db.hpp"
#include "netlist/generators.hpp"
#include "obs/obs.hpp"
#include "synth/synthesizer.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace prcost;

u64 counter_value(const std::string& name) {
  for (const auto& snap : obs::registry().snapshot()) {
    if (snap.name == name && snap.kind == obs::MetricKind::kCounter) {
      return snap.count;
    }
  }
  return 0;
}

bool points_identical(const std::vector<DesignPoint>& a,
                      const std::vector<DesignPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible ||
        a[i].infeasible_reason != b[i].infeasible_reason ||
        a[i].total_prr_area != b[i].total_prr_area ||
        a[i].total_bitstream_bytes != b[i].total_bitstream_bytes ||
        a[i].makespan_s != b[i].makespan_s ||
        a[i].total_reconfig_s != b[i].total_reconfig_s ||
        a[i].prr_plans.size() != b[i].prr_plans.size()) {
      return false;
    }
    for (std::size_t g = 0; g < a[i].prr_plans.size(); ++g) {
      const PrrPlan& p = a[i].prr_plans[g];
      const PrrPlan& q = b[i].prr_plans[g];
      if (p.organization.h != q.organization.h ||
          p.organization.columns.clb_cols != q.organization.columns.clb_cols ||
          p.organization.columns.dsp_cols != q.organization.columns.dsp_cols ||
          p.organization.columns.bram_cols !=
              q.organization.columns.bram_cols ||
          p.window.first_col != q.window.first_col ||
          p.window.width != q.window.width || p.first_row != q.first_row ||
          p.bitstream.total_bytes != q.bitstream.total_bytes) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string device_name = "xc5vlx110t";
  std::size_t prm_count = 8;
  u32 task_count = 30;
  int repeats = 3;
  std::size_t workers = 0;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--device") {
      device_name = value;
    } else if (flag == "--prms") {
      prm_count = std::stoul(value);
    } else if (flag == "--tasks") {
      task_count = static_cast<u32>(std::stoul(value));
    } else if (flag == "--repeats") {
      repeats = std::stoi(value);
    } else if (flag == "--workers") {
      workers = std::stoul(value);
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }

  obs::set_metrics_enabled(true);
  const Device& device = DeviceDb::instance().get(device_name);

  // Repeated requirements: a few distinct bases replicated round-robin, so
  // partitions keep merging groups to the same PrmRequirements 5-tuple.
  const std::vector<Netlist> bases = {make_fir(), make_mips5(), make_uart()};
  std::vector<PrmInfo> prms;
  for (std::size_t i = 0; i < prm_count; ++i) {
    const SynthesisResult result = synthesize(
        bases[i % bases.size()], SynthOptions{device.fabric.family()});
    prms.push_back(PrmInfo{"prm" + std::to_string(i),
                           PrmRequirements::from_report(result.report), 0});
  }
  WorkloadParams wp;
  wp.count = task_count;
  wp.prm_count = narrow<u32>(prms.size());
  const auto workload = make_workload(wp);
  ExploreOptions options;
  options.workers = workers;

  const auto run_explores = [&](int count, std::vector<DesignPoint>& out) {
    Stopwatch watch;
    for (int r = 0; r < count; ++r) {
      out = explore(prms, device.fabric, workload, options);
    }
    return watch.seconds() / count;
  };

  set_plan_cache_enabled(false);
  std::vector<DesignPoint> uncached_points;
  const double uncached_s = run_explores(repeats, uncached_points);

  set_plan_cache_enabled(true);
  plan_cache_clear();
  const u64 hits_before = counter_value("plan_cache.hits");
  const u64 misses_before = counter_value("plan_cache.misses");
  std::vector<DesignPoint> cached_points;
  const double cached_s = run_explores(repeats, cached_points);
  const u64 hits = counter_value("plan_cache.hits") - hits_before;
  const u64 misses = counter_value("plan_cache.misses") - misses_before;

  const bool identical = points_identical(uncached_points, cached_points);
  const auto partitions = static_cast<double>(uncached_points.size());
  const double hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"device\": \"" << device.name << "\",\n"
            << "  \"prms\": " << prms.size() << ",\n"
            << "  \"partitions\": " << uncached_points.size() << ",\n"
            << "  \"tasks\": " << task_count << ",\n"
            << "  \"workers\": " << workers << ",\n"
            << "  \"repeats\": " << repeats << ",\n"
            << "  \"no_cache\": {\"seconds_per_explore\": " << uncached_s
            << ", \"partitions_per_sec\": " << partitions / uncached_s
            << "},\n"
            << "  \"cache\": {\"seconds_per_explore\": " << cached_s
            << ", \"partitions_per_sec\": " << partitions / cached_s
            << ", \"hits\": " << hits << ", \"misses\": " << misses
            << ", \"hit_rate\": " << hit_rate << "},\n"
            << "  \"speedup\": " << uncached_s / cached_s << ",\n"
            << "  \"identical\": " << (identical ? "true" : "false") << "\n"
            << "}\n";
  if (!identical) {
    std::cerr << "error: cached explore() diverged from uncached\n";
    return 1;
  }
  return 0;
}
