// Substrate performance characterization (google-benchmark): throughput
// of the simulators the reproduction is built on, plus the parallel
// scaling of the DSE sweep. Not a paper table - this is the engineering
// budget behind the "evaluate whole design spaces in milliseconds" claim.
//
// Note on the DSE scaling numbers: per-partition cost is heavy-tailed
// (the near-infeasible partitionings pay the full superset floorplanning
// scan), so wall time is pinned at the slowest single partition while the
// measured main-thread CPU drops with the worker count - a textbook
// Amdahl tail, visible here on purpose.
#include <benchmark/benchmark.h>

#include "bitstream/config_memory.hpp"
#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "dse/explorer.hpp"
#include "netlist/generators.hpp"
#include "paperdata/paper_dataset.hpp"
#include "par/par.hpp"
#include "synth/synthesizer.hpp"

namespace {

using namespace prcost;

void BM_Synthesize(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = synthesize(which == 0   ? make_fir()
                             : which == 1 ? make_mips5()
                                          : make_sdram_ctrl(),
                             SynthOptions{Family::kVirtex5});
    benchmark::DoNotOptimize(result.report.lut_ff_pairs);
  }
  state.SetLabel(which == 0 ? "fir" : which == 1 ? "mips" : "sdram");
}
BENCHMARK(BM_Synthesize)->DenseRange(0, 2);

void BM_GenerateBitstream(benchmark::State& state) {
  const auto& rec = paperdata::table5_record("MIPS", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  u64 bytes = 0;
  for (auto _ : state) {
    const auto words = generate_bitstream(*plan, rec.family);
    benchmark::DoNotOptimize(words.data());
    bytes += words.size() * 4;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_GenerateBitstream);

void BM_ApplyToConfigMemory(benchmark::State& state) {
  const auto& rec = paperdata::table5_record("MIPS", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  const auto words = generate_bitstream(*plan, rec.family);
  u64 bytes = 0;
  for (auto _ : state) {
    ConfigMemory cm{fabric};
    benchmark::DoNotOptimize(cm.apply_bitstream(words));
    bytes += words.size() * 4;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ApplyToConfigMemory);

void BM_PlaceAndRoute(benchmark::State& state) {
  auto synth = synthesize(make_sdram_ctrl(), SynthOptions{Family::kVirtex5});
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  const auto plan =
      find_prr(PrmRequirements::from_report(synth.report), fabric);
  for (auto _ : state) {
    state.PauseTiming();
    Netlist copy = synth.netlist;  // P&R mutates
    state.ResumeTiming();
    ParOptions options;
    options.place.anneal_moves = static_cast<u32>(state.range(0));
    benchmark::DoNotOptimize(
        place_and_route(std::move(copy), *plan, fabric, options).routed);
  }
  state.SetLabel("anneal_moves=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PlaceAndRoute)->Arg(1)->Arg(2000)->Arg(20000);

void BM_ExploreParallelScaling(benchmark::State& state) {
  std::vector<PrmInfo> prms;
  for (const char* name : {"FIR", "MIPS", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, "xc5vlx110t");
    prms.push_back(PrmInfo{name, rec.req, 0});
  }
  // 4 distinct workloads stand in for 4 PRMs' worth of partitions; use a
  // larger PRM set to give the pool work.
  prms.push_back(prms[0]);
  prms.back().name = "FIR2";
  prms.push_back(prms[2]);
  prms.back().name = "SDRAM2";
  prms.push_back(prms[1]);
  prms.back().name = "MIPS2";
  prms.push_back(prms[0]);
  prms.back().name = "FIR3";  // 7 PRMs -> Bell(7) = 877 partitionings
  const Fabric& fabric = DeviceDb::instance().get("xc6vlx240t").fabric;
  WorkloadParams wp;
  wp.count = 60;
  wp.prm_count = narrow<u32>(prms.size());
  const auto workload = make_workload(wp);
  ExploreOptions options;
  options.workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore(prms, fabric, workload, options).size());
  }
  state.SetLabel("workers=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ExploreParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
