// Ablation C: the Section-I motivation quantified - PR system performance
// vs the non-PR (full reconfiguration) baseline as a function of PRR
// sizing. Right-sized PRRs win by a wide margin; deliberately oversized
// PRRs (larger H*W -> larger partial bitstreams) erode the advantage until
// a one-PRR, near-full-size design is no better than non-PR.
#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "multitask/simulator.hpp"
#include "paperdata/paper_dataset.hpp"
#include "reconfig/full_bitstream.hpp"

int main() {
  using namespace prcost;
  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  const u64 full_bytes = full_bitstream_bytes(device.fabric);

  // The three paper PRMs; their right-sized bitstreams come from the model.
  std::vector<PrmInfo> prms;
  for (const char* name : {"FIR", "MIPS", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, "xc5vlx110t");
    const auto plan = find_prr(rec.req, device.fabric);
    prms.push_back(PrmInfo{name, rec.req, plan->bitstream.total_bytes});
  }

  WorkloadParams wp;
  wp.count = 150;
  wp.mean_interarrival_s = 1.0e-3;
  wp.mean_exec_s = 2.0e-3;
  const auto tasks = make_workload(wp);

  TextTable table{{"design", "PRRs", "bitstream/switch", "makespan (ms)",
                   "reconfig total (ms)", "vs non-PR"}};
  const SimResult nonpr =
      simulate_full_reconfig(prms, tasks, full_bytes, StorageMedia::kDdrSdram);

  const auto run = [&](const std::string& label, u32 prrs,
                       double oversize_factor) {
    std::vector<PrmInfo> sized = prms;
    u64 max_bytes = 0;
    for (auto& prm : sized) {
      prm.bitstream_bytes = static_cast<u64>(
          static_cast<double>(prm.bitstream_bytes) * oversize_factor);
      prm.bitstream_bytes = std::min(prm.bitstream_bytes, full_bytes);
      max_bytes = std::max(max_bytes, prm.bitstream_bytes);
    }
    SimConfig config;
    config.prr_count = prrs;
    config.policy = SchedPolicy::kFcfs;  // no scheduler rescue
    const SimResult pr = simulate(sized, tasks, config);
    table.add_row({label, std::to_string(prrs),
                   format_bytes(static_cast<double>(max_bytes)),
                   format_fixed(pr.makespan_s * 1e3, 2),
                   format_fixed(pr.total_reconfig_s * 1e3, 2),
                   format_fixed(nonpr.makespan_s / pr.makespan_s, 2) + "x"});
  };

  run("right-sized PRRs (cost model)", 3, 1.0);
  run("right-sized, fewer PRRs", 2, 1.0);
  run("oversized PRRs (4x bitstream)", 2, 4.0);
  run("oversized PRRs (16x bitstream)", 1, 16.0);
  run("pathological: full-size PRR", 1,
      static_cast<double>(full_bytes));  // clamped to full
  table.add_separator();
  table.add_row({"non-PR (full reconfiguration)", "-",
                 format_bytes(static_cast<double>(full_bytes)),
                 format_fixed(nonpr.makespan_s * 1e3, 2),
                 format_fixed(nonpr.total_reconfig_s * 1e3, 2), "1.00x"});
  bench::print_table(
      "Ablation C: PR vs non-PR makespan as PRR sizing degrades "
      "(speedup >1x means PR wins)",
      table);

  // Scheduler comparison at the right-sized point.
  TextTable sched{{"policy", "makespan (ms)", "reuse hits",
                   "reconfig total (ms)"}};
  for (const SchedPolicy policy : kAllPolicies) {
    SimConfig config;
    config.prr_count = 3;
    config.policy = policy;
    const SimResult r = simulate(prms, tasks, config);
    sched.add_row({std::string{sched_policy_name(policy)},
                   format_fixed(r.makespan_s * 1e3, 2),
                   std::to_string(r.reuse_hits),
                   format_fixed(r.total_reconfig_s * 1e3, 2)});
  }
  bench::print_table("Ablation C2: scheduling policy at right-sized PRRs",
                     sched);
  return 0;
}
