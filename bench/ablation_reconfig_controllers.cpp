// Ablation B: reconfiguration time of the Table V partial bitstreams under
// the Related-Work controller and storage-media models (Liu'09 CPU/DMA,
// Duhem'12 FaRM, Claus'08 busy factor, Papadimitriou'11 media survey).
// Reproduces the paper's framing: bitstream size (what our model predicts)
// times the platform's effective throughput is the reconfiguration time -
// so PRR organization decisions propagate all the way to schedule-level
// cost.
#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "reconfig/baselines.hpp"
#include "reconfig/controllers.hpp"

int main() {
  using namespace prcost;

  // Controllers x media for the FIR/LX110T bitstream.
  {
    const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
    const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
    const auto plan = find_prr(rec.req, fabric);
    const u64 bytes = plan->bitstream.total_bytes;
    TextTable table{{"controller", "CompactFlash", "Flash", "DDR SDRAM",
                     "BRAM"}};
    for (const auto& controller : standard_controllers(Family::kVirtex5)) {
      std::vector<std::string> row{controller->name()};
      for (const StorageMedia media : kAllMedia) {
        row.push_back(
            format_fixed(controller->estimate(bytes, media).total_s * 1e3,
                         3) +
            " ms");
      }
      table.add_row(row);
    }
    // Claus busy-factor sweep on the DMA controller.
    for (const double busy : {0.25, 0.5, 0.75}) {
      const BusyFactorController wrapped{
          std::make_shared<DmaIcapController>(default_icap(Family::kVirtex5)),
          busy};
      std::vector<std::string> row{"DMA+busy " + format_fixed(busy, 2)};
      for (const StorageMedia media : kAllMedia) {
        row.push_back(
            format_fixed(wrapped.estimate(bytes, media).total_s * 1e3, 3) +
            " ms");
      }
      table.add_row(row);
    }
    bench::print_table(
        "Ablation B1: FIR/LX110T (" + std::to_string(bytes) +
            " B) reconfiguration time by controller x storage media",
        table);
  }

  // All six Table V bitstreams under the prior-work published models.
  {
    TextTable table{{"PRM/device", "bytes", "Papadimitriou (DDR, band)",
                     "Claus (busy=0.2)", "Claus valid?", "Duhem FaRM"}};
    for (const auto& rec : paperdata::table5()) {
      const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
      const auto plan = find_prr(rec.req, fabric);
      if (!plan) continue;
      const u64 bytes = plan->bitstream.total_bytes;
      const auto papa = papadimitriou_model(bytes, StorageMedia::kDdrSdram);
      const auto claus =
          claus_model(bytes, rec.family, 0.2, StorageMedia::kDdrSdram);
      table.add_row(
          {std::string{rec.prm} + "/" + std::string{rec.device},
           std::to_string(bytes),
           format_fixed(papa.nominal_s * 1e6, 1) + " us [" +
               format_fixed(papa.low_s * 1e6, 1) + ", " +
               format_fixed(papa.high_s * 1e6, 1) + "]",
           format_fixed(claus.seconds * 1e6, 1) + " us",
           claus.icap_is_bottleneck ? "yes" : "no",
           format_fixed(duhem_model(bytes, rec.family) * 1e6, 1) + " us"});
    }
    bench::print_table(
        "Ablation B2: prior-work cost models applied to the Table V "
        "bitstreams",
        table);
  }
  return 0;
}
