// Table IV: device-family constants of the bitstream size cost model
// (CF_CLB, CF_DSP, CF_BRAM, DF_BRAM, FR_size, IW, FW, FAR_FDRI,
// Bytes_word). IW/FW/FAR_FDRI were lost in the paper's text extraction;
// the values printed here are the ones our generator provably emits
// (tests assert header/trailer word counts equal IW/FW per family).
#include "bench/bench_util.hpp"
#include "device/family_traits.hpp"

int main() {
  using namespace prcost;
  TextTable table{{"Parameter", "Virtex-4", "Virtex-5", "Virtex-6",
                   "7-series"}};
  const auto row = [&](const char* name, auto getter) {
    std::vector<std::string> cells{name};
    for (const Family family : kAllFamilies) {
      cells.push_back(std::to_string(getter(traits(family))));
    }
    table.add_row(std::move(cells));
  };
  row("CF_CLB", [](const FamilyTraits& t) { return t.cf_clb; });
  row("CF_DSP", [](const FamilyTraits& t) { return t.cf_dsp; });
  row("CF_BRAM", [](const FamilyTraits& t) { return t.cf_bram; });
  row("DF_BRAM", [](const FamilyTraits& t) { return t.df_bram; });
  row("FR_size", [](const FamilyTraits& t) { return t.frame_size; });
  row("IW", [](const FamilyTraits& t) { return t.iw; });
  row("FW", [](const FamilyTraits& t) { return t.fw; });
  row("FAR_FDRI", [](const FamilyTraits& t) { return t.far_fdri; });
  row("Bytes_word", [](const FamilyTraits& t) { return t.bytes_word; });
  bench::print_table("Table IV: bitstream-model device-family constants",
                     table);
  return 0;
}
