// Ablation E: rectangular vs L-shaped PRRs (the paper's Section IV
// suggestion that non-rectangular shapes raise RU). For every Table V
// evaluation point, compare the rectangular optimum against the best
// two-band L-shape: cells, bitstream bytes and CLB utilization. DSP-heavy
// PRMs on single-DSP-column devices benefit most (FIR on the LX110T);
// pure-logic PRMs gain nothing.
#include "bench/bench_util.hpp"
#include "cost/shaped_prr.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"

int main() {
  using namespace prcost;
  TextTable table{{"PRM/device", "rect HxW", "rect cells", "rect bytes",
                   "rect RU_CLB", "L-shape bands", "L cells", "L bytes",
                   "L RU_CLB", "cells saved"}};
  for (const auto& rec : paperdata::table5()) {
    const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
    const auto rect = find_prr(rec.req, fabric);
    if (!rect) continue;
    const auto shaped = find_l_shaped_prr(rec.req, fabric);
    std::vector<std::string> row{
        std::string{rec.prm} + "/" + std::string{rec.device},
        std::to_string(rect->organization.h) + "x" +
            std::to_string(rect->organization.width()),
        std::to_string(rect->organization.size()),
        std::to_string(rect->bitstream.total_bytes),
        bench::pct(rect->ru.clb)};
    if (shaped && shaped->shape.size() < rect->organization.size()) {
      std::string bands;
      for (const PrrBand& band : shaped->shape.bands) {
        if (!bands.empty()) bands += " + ";
        bands += std::to_string(band.organization.h) + "x" +
                 std::to_string(band.organization.width());
      }
      row.push_back(bands);
      row.push_back(std::to_string(shaped->shape.size()));
      row.push_back(std::to_string(shaped->bitstream.total_bytes));
      row.push_back(bench::pct(shaped->ru.clb));
      row.push_back(std::to_string(rect->organization.size() -
                                   shaped->shape.size()));
    } else {
      row.insert(row.end(), {"- (rectangle optimal)", "-", "-", "-", "0"});
    }
    table.add_row(std::move(row));
  }
  bench::print_table(
      "Ablation E: rectangular vs L-shaped PRRs (paper Section IV: "
      "\"higher RUs may be obtained by selecting non-rectangular PRRs\")",
      table);
  return 0;
}
