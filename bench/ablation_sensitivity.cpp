// Ablation K: portability sensitivity. The paper claims the models port
// across families "by simply altering the device-specific characteristics
// values". The flip side: a wrong constant silently skews every estimate.
// This bench perturbs each Table IV constant by +/-10% and reports the
// resulting bitstream-size error for the FIR/LX110T point, ranking which
// constants a porter must get right first.
#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"

namespace {

using namespace prcost;

u64 size_with(FamilyTraits t, const PrrOrganization& org) {
  // Re-run Eq. (18)-(23) with perturbed traits.
  const u64 ncf = u64{org.columns.clb_cols} * t.cf_clb +
                  u64{org.columns.dsp_cols} * t.cf_dsp +
                  u64{org.columns.bram_cols} * t.cf_bram;
  const u64 ncw = t.far_fdri + (ncf + 1) * u64{t.frame_size};
  const u64 ndw =
      org.columns.bram_cols > 0
          ? t.far_fdri +
                (u64{org.columns.bram_cols} * t.df_bram + 1) * t.frame_size
          : 0;
  return (t.iw + u64{org.h} * (ncw + ndw) + t.fw) * t.bytes_word;
}

}  // namespace

int main() {
  const auto& rec = paperdata::table5_record("MIPS", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  const FamilyTraits& base = fabric.traits();
  const u64 true_bytes = plan->bitstream.total_bytes;

  struct Knob {
    const char* name;
    u32 FamilyTraits::*field;
  };
  const Knob knobs[] = {
      {"CF_CLB", &FamilyTraits::cf_clb},
      {"CF_DSP", &FamilyTraits::cf_dsp},
      {"CF_BRAM", &FamilyTraits::cf_bram},
      {"DF_BRAM", &FamilyTraits::df_bram},
      {"FR_size", &FamilyTraits::frame_size},
      {"IW", &FamilyTraits::iw},
      {"FW", &FamilyTraits::fw},
      {"FAR_FDRI", &FamilyTraits::far_fdri},
  };

  TextTable table{{"constant", "baseline", "-10% error", "+10% error"}};
  for (const Knob& knob : knobs) {
    const auto error_with = [&](double scale) {
      FamilyTraits t = base;
      t.*(knob.field) = static_cast<u32>(
          std::max(1.0, static_cast<double>(base.*(knob.field)) * scale));
      const u64 bytes = size_with(t, plan->organization);
      return 100.0 *
             (static_cast<double>(bytes) - static_cast<double>(true_bytes)) /
             static_cast<double>(true_bytes);
    };
    table.add_row({knob.name, std::to_string(base.*(knob.field)),
                   format_fixed(error_with(0.9), 2) + "%",
                   format_fixed(error_with(1.1), 2) + "%"});
  }
  bench::print_table(
      "Ablation K: bitstream-size error from +/-10% mis-specification of "
      "each Table IV constant (MIPS/LX110T; FR_size and CF_CLB dominate)",
      table);
  return 0;
}
