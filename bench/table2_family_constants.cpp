// Table II: device-family constants used by the PRR size/organization
// cost model (CLB_col, DSP_col, BRAM_col, LUT_CLB, FF_CLB), extended with
// the 7-series column the paper's portability claim promises.
#include "bench/bench_util.hpp"
#include "device/family_traits.hpp"

int main() {
  using namespace prcost;
  TextTable table{{"Parameter", "Virtex-4", "Virtex-5", "Virtex-6",
                   "7-series"}};
  const auto row = [&](const char* name, auto getter) {
    std::vector<std::string> cells{name};
    for (const Family family : kAllFamilies) {
      cells.push_back(std::to_string(getter(traits(family))));
    }
    table.add_row(std::move(cells));
  };
  row("CLB_col", [](const FamilyTraits& t) { return t.clb_col; });
  row("DSP_col", [](const FamilyTraits& t) { return t.dsp_col; });
  row("BRAM_col", [](const FamilyTraits& t) { return t.bram_col; });
  row("LUT_CLB", [](const FamilyTraits& t) { return t.lut_clb; });
  row("FF_CLB", [](const FamilyTraits& t) { return t.ff_clb; });
  bench::print_table(
      "Table II: PRR-model device-family constants (paper columns V4/V5/V6; "
      "7-series = portability extension)",
      table);
  return 0;
}
