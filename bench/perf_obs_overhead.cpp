// Micro-benchmark for the observability fast paths.
//
// The contract (ISSUE 1): a disabled instrumentation site costs one relaxed
// atomic load. BM_counter_disabled / BM_span_disabled should therefore be
// within noise of BM_relaxed_load_baseline; the enabled variants show what
// a run pays when tracing is switched on.
#include <atomic>

#include <benchmark/benchmark.h>

#include "obs/obs.hpp"

namespace {

using namespace prcost;

std::atomic<bool> g_baseline_flag{false};

void BM_relaxed_load_baseline(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_baseline_flag.load(std::memory_order_relaxed));
  }
}
BENCHMARK(BM_relaxed_load_baseline);

void BM_counter_disabled(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  for (auto _ : state) {
    PRCOST_COUNT("perf.disabled_counter");
  }
}
BENCHMARK(BM_counter_disabled);

void BM_span_disabled(benchmark::State& state) {
  obs::set_tracing(false);
  for (auto _ : state) {
    PRCOST_TRACE_SPAN("perf.disabled_span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_span_disabled);

void BM_counter_enabled(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  for (auto _ : state) {
    PRCOST_COUNT("perf.enabled_counter");
  }
  obs::set_metrics_enabled(false);
}
BENCHMARK(BM_counter_enabled);

void BM_histogram_enabled(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  u64 v = 0;
  for (auto _ : state) {
    PRCOST_HIST("perf.enabled_hist", v++ % 2000, 10.0, 100.0, 1000.0);
  }
  obs::set_metrics_enabled(false);
}
BENCHMARK(BM_histogram_enabled);

void BM_span_enabled(benchmark::State& state) {
  obs::set_tracing(true);
  for (auto _ : state) {
    PRCOST_TRACE_SPAN("perf.enabled_span");
    benchmark::ClobberMemory();
  }
  obs::set_tracing(false);
  obs::clear_trace();
}
BENCHMARK(BM_span_enabled);

}  // namespace
