// Micro-benchmark for the observability fast paths.
//
// The contract (ISSUE 1, extended by ISSUE 6): a disabled instrumentation
// site costs one relaxed atomic load. counter_disabled_ns / span_disabled_ns
// / request_note_disabled_ns should therefore be within noise of
// relaxed_load_baseline_ns; the enabled variants show what a run pays when
// metrics / tracing / request telemetry are switched on.
//
// Emits one JSON object on stdout (like the other perf_* benches) so the
// numbers can join the BENCH_trajectory.jsonl file via tools/bench_report:
//
//   {"iters":..., "relaxed_load_baseline_ns":..., "counter_disabled_ns":...,
//    "span_disabled_ns":..., "request_note_disabled_ns":...,
//    "counter_enabled_ns":..., "histogram_enabled_ns":...,
//    "span_enabled_ns":..., "request_scope_ns":...}
//
//   perf_obs_overhead [--iters N] [--out FILE|-]
#include <atomic>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace prcost;

std::atomic<bool> g_baseline_flag{false};

// Keep `v` alive without emitting code for it (the classic
// do-not-optimize barrier; google-benchmark uses the same trick).
template <typename T>
inline void do_not_optimize(T const& v) {
  asm volatile("" : : "r,m"(v) : "memory");
}

inline void clobber_memory() { asm volatile("" : : : "memory"); }

// Run `body` iters times and return mean ns per iteration.
template <typename Body>
double time_ns(u64 iters, Body&& body) {
  // Warm-up pass: faults in the static metric registrations + code pages.
  for (u64 i = 0; i < 1000; ++i) body(i);
  Stopwatch watch;
  for (u64 i = 0; i < iters; ++i) body(i);
  return watch.seconds() * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  u64 iters = 20'000'000;
  std::string out_path = "-";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--iters") {
      iters = std::stoull(value);
    } else if (flag == "--out") {
      out_path = value;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }
  if (iters == 0) {
    std::cerr << "--iters must be > 0\n";
    return 2;
  }

  const double baseline_ns = time_ns(iters, [](u64) {
    do_not_optimize(g_baseline_flag.load(std::memory_order_relaxed));
  });

  obs::set_metrics_enabled(false);
  const double counter_disabled_ns =
      time_ns(iters, [](u64) { PRCOST_COUNT("perf.disabled_counter"); });

  obs::set_tracing(false);
  const double span_disabled_ns = time_ns(iters, [](u64) {
    PRCOST_TRACE_SPAN("perf.disabled_span");
    clobber_memory();
  });

  // The per-request telemetry fast path with no RequestStats scope alive:
  // one relaxed load of the scope counter.
  const double request_note_disabled_ns =
      time_ns(iters, [](u64) { PRCOST_REQUEST_EVENT(kPlanCacheHit); });

  obs::set_metrics_enabled(true);
  const double counter_enabled_ns =
      time_ns(iters, [](u64) { PRCOST_COUNT("perf.enabled_counter"); });
  const double histogram_enabled_ns = time_ns(iters, [](u64 i) {
    PRCOST_HIST("perf.enabled_hist", i % 2000, 10.0, 100.0, 1000.0);
  });
  obs::set_metrics_enabled(false);

  obs::set_tracing(true);
  const double span_enabled_ns = time_ns(iters, [](u64) {
    PRCOST_TRACE_SPAN("perf.enabled_span");
    clobber_memory();
  });
  obs::set_tracing(false);
  obs::clear_trace();

  // Full cost of opening and closing a request-stats scope (install TLS
  // context, note a cache event, summarize). Scopes are per engine call,
  // not per hot-loop iteration, so fewer iters keep the bench quick.
  const u64 scope_iters = iters / 100 + 1;
  const double request_scope_ns = time_ns(scope_iters, [](u64) {
    const obs::RequestStats stats;
    obs::note_request_event(obs::RequestEvent::kPlanCacheHit);
    do_not_optimize(stats.summary().plan_cache_hits);
  });

  std::ofstream file;
  if (out_path != "-") {
    file.open(out_path);
    if (!file) {
      std::cerr << "error: cannot open " << out_path << "\n";
      return 1;
    }
  }
  std::ostream& out = out_path == "-" ? std::cout : file;
  out.precision(4);
  out << "{\n"
      << "  \"iters\": " << iters << ",\n"
      << "  \"relaxed_load_baseline_ns\": " << baseline_ns << ",\n"
      << "  \"counter_disabled_ns\": " << counter_disabled_ns << ",\n"
      << "  \"span_disabled_ns\": " << span_disabled_ns << ",\n"
      << "  \"request_note_disabled_ns\": " << request_note_disabled_ns
      << ",\n"
      << "  \"counter_enabled_ns\": " << counter_enabled_ns << ",\n"
      << "  \"histogram_enabled_ns\": " << histogram_enabled_ns << ",\n"
      << "  \"span_enabled_ns\": " << span_enabled_ns << ",\n"
      << "  \"request_scope_ns\": " << request_scope_ns << "\n"
      << "}\n";
  return 0;
}
