// Ablation F: measured bitstream compressibility and its effect on the
// FaRM controller model (Duhem'12). Rather than assuming a compression
// ratio, compress the actually generated bitstreams: word-level RLE (what
// FaRM implements in hardware) and MFWR frame-dedup (what the Xilinx
// Multiple Frame Write command enables) across payload realism levels.
#include "bench/bench_util.hpp"
#include "bitstream/compress.hpp"
#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "reconfig/controllers.hpp"

int main() {
  using namespace prcost;

  // Measured ratios per PRM and payload kind.
  TextTable table{{"PRM/device", "payload", "RLE ratio", "MFWR ratio",
                   "zero frames"}};
  for (const auto& rec : paperdata::table5()) {
    const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
    const auto plan = find_prr(rec.req, fabric);
    if (!plan) continue;
    for (const PayloadKind kind :
         {PayloadKind::kZeros, PayloadKind::kSparse, PayloadKind::kRandom}) {
      GeneratorOptions options;
      options.payload = kind;
      const auto words = generate_bitstream(*plan, rec.family, options);
      const CompressionStats rle = measure_rle(words);
      const FrameRedundancy frames =
          analyze_bitstream_frames(words, rec.family);
      table.add_row(
          {std::string{rec.prm} + "/" + std::string{rec.device},
           kind == PayloadKind::kZeros    ? "blank"
           : kind == PayloadKind::kSparse ? "sparse (realistic)"
                                          : "random (worst case)",
           format_fixed(rle.ratio(), 3),
           format_fixed(frames.mfwr_ratio(traits(rec.family).frame_size), 3),
           std::to_string(frames.zero_frames) + "/" +
               std::to_string(frames.total_frames)});
    }
  }
  bench::print_table(
      "Ablation F1: measured compressibility of generated partial "
      "bitstreams",
      table);

  // FaRM with the measured (sparse) ratio vs the plain DMA controller.
  TextTable farm{{"PRM/device", "bytes", "DMA (DDR)", "FaRM assumed 0.75",
                  "FaRM measured ratio", "measured"}};
  const IcapModel icap = default_icap(Family::kVirtex5);
  for (const auto& rec : paperdata::table5()) {
    const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
    const auto plan = find_prr(rec.req, fabric);
    if (!plan) continue;
    const auto words = generate_bitstream(*plan, rec.family);
    const double measured = measure_rle(words).ratio();
    const DmaIcapController dma{icap};
    const FarmController assumed{icap, 0.75};
    const FarmController farm_measured{icap, std::min(1.0, measured)};
    const u64 bytes = plan->bitstream.total_bytes;
    farm.add_row(
        {std::string{rec.prm} + "/" + std::string{rec.device},
         std::to_string(bytes),
         format_fixed(dma.estimate(bytes, StorageMedia::kDdrSdram).total_s *
                          1e6,
                      1) +
             " us",
         format_fixed(
             assumed.estimate(bytes, StorageMedia::kDdrSdram).total_s * 1e6,
             1) +
             " us",
         format_fixed(farm_measured.estimate(bytes, StorageMedia::kDdrSdram)
                              .total_s *
                          1e6,
                      1) +
             " us",
         format_fixed(measured, 3)});
  }
  bench::print_table(
      "Ablation F2: FaRM reconfiguration time with assumed vs measured "
      "compression",
      farm);
  return 0;
}
