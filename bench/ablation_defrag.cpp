// Ablation J: online fragmentation and HTR compaction. Replay a random
// allocate/release trace of PRRs; on a placement failure, the compaction
// policy compacts the fabric (live PRRs move via HTR relocation) and
// retries once - counting the allocations rescued. Compaction is bounded
// by window compatibility: a PRR can only slide to a column span with the
// identical type sequence, so heterogeneous fabrics cap the achievable
// gain (a finding the table makes visible).
//
// Reports JSON on stdout (perf-bench schema, flattened by bench_report)
// and writes it to --out (default BENCH_defrag.json, "-" disables the
// file).
//
//   ablation_defrag [--steps 400] [--out BENCH_defrag.json]
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "bench/bench_util.hpp"
#include "device/device_db.hpp"
#include "htr/defrag.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace prcost;

struct TraceResult {
  u64 attempts = 0;
  u64 failures = 0;
  u64 rescued = 0;  ///< failures turned into successes by compaction
  u64 moves = 0;
  u64 min_largest_free = ~0ull;
};

TraceResult run_trace(bool compaction, u64 seed, int steps) {
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  Floorplanner fp{fabric};
  Rng rng{seed};
  std::vector<std::string> live;
  TraceResult result;
  u64 next_id = 0;
  for (int step = 0; step < steps; ++step) {
    if (rng.chance(0.6) || live.empty()) {
      // Allocate a PRM of random size; every ~8th request is a large
      // multi-row module that only fits in a compacted fabric.
      PrmRequirements req;
      req.lut_ff_pairs =
          rng.chance(0.12) ? 6000 + rng.below(8000) : 150 + rng.below(2500);
      req.luts = req.lut_ff_pairs * 3 / 4;
      req.ffs = req.lut_ff_pairs / 2;
      ++result.attempts;
      const std::string name = "prr" + std::to_string(next_id++);
      if (fp.place(name, req)) {
        live.push_back(name);
      } else if (compaction) {
        // Compact-on-demand and retry once.
        result.moves += compact(fp, fabric).moves;
        if (fp.place(name, req)) {
          live.push_back(name);
          ++result.rescued;
        } else {
          ++result.failures;
        }
      } else {
        ++result.failures;
      }
    } else {
      const std::size_t victim = rng.below(live.size());
      fp.remove(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    result.min_largest_free =
        std::min(result.min_largest_free, largest_free_rect(fp, fabric));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_defrag.json";
  int steps = 400;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--out") {
      out_path = value;
    } else if (flag == "--steps") {
      steps = static_cast<int>(parse_u64(value));
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }

  TextTable table{{"policy", "seed", "alloc attempts", "failures",
                   "failure rate", "rescued by HTR", "HTR moves",
                   "min largest-free rect"}};
  Json runs = Json::array();
  for (const u64 seed : {11ull, 22ull, 33ull}) {
    for (const bool compaction : {false, true}) {
      const TraceResult r = run_trace(compaction, seed, steps);
      table.add_row(
          {compaction ? "compact-on-demand" : "no compaction",
           std::to_string(seed), std::to_string(r.attempts),
           std::to_string(r.failures),
           format_fixed(100.0 * static_cast<double>(r.failures) /
                            static_cast<double>(r.attempts),
                        1) +
               "%",
           std::to_string(r.rescued), std::to_string(r.moves),
           std::to_string(r.min_largest_free)});
      Json run = Json::object();
      run.set("policy", compaction ? "compact-on-demand" : "no-compaction")
          .set("seed", seed)
          .set("attempts", r.attempts)
          .set("failures", r.failures)
          .set("failure_rate", static_cast<double>(r.failures) /
                                   static_cast<double>(r.attempts))
          .set("rescued", r.rescued)
          .set("htr_moves", r.moves)
          .set("min_largest_free_rect", r.min_largest_free);
      runs.push_back(std::move(run));
    }
  }
  bench::print_table(
      "Ablation J: online PRR allocation under fragmentation, with and "
      "without HTR compaction",
      table);

  Json doc = Json::object();
  doc.set("bench", "ablation_defrag")
      .set("device", "xc5vlx110t")
      .set("steps", static_cast<u64>(steps))
      .set("runs", std::move(runs));
  const std::string json = doc.dump();
  std::cout << json << '\n';
  if (out_path != "-") {
    std::ofstream out{out_path};
    out << json << '\n';
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
  }
  return 0;
}
