// Ablation L: device selection across the catalog. The cost models make
// part selection - the very first design decision - a microsecond-scale
// query: floorplan the three paper PRMs on every catalog device, total the
// fabric footprint and bitstream traffic, simulate the workload, rank.
#include "bench/bench_util.hpp"
#include "dse/device_select.hpp"
#include "paperdata/paper_dataset.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace prcost;
  std::vector<PrmInfo> prms;
  for (const char* name : {"FIR", "MIPS", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, "xc5vlx110t");
    prms.push_back(PrmInfo{name, rec.req, 0});
  }
  WorkloadParams wp;
  wp.count = 100;
  const auto workload = make_workload(wp);

  Stopwatch watch;
  const auto choices = rank_devices(prms, workload);
  const double rank_s = watch.seconds();

  TextTable table{{"rank", "device", "feasible", "PRR cells",
                   "fabric used", "bitstream total", "makespan (ms)"}};
  int rank = 1;
  for (const DeviceChoice& choice : choices) {
    table.add_row(
        {std::to_string(rank++), choice.device,
         choice.feasible ? "yes" : choice.reason,
         choice.feasible ? std::to_string(choice.total_prr_cells) : "-",
         choice.feasible
             ? format_fixed(choice.fabric_fraction * 100, 1) + "%"
             : "-",
         choice.feasible
             ? format_bytes(static_cast<double>(choice.total_bitstream_bytes))
             : "-",
         choice.feasible ? format_fixed(choice.makespan_s * 1e3, 2) : "-"});
  }
  bench::print_table(
      "Ablation L: catalog ranked for the FIR+MIPS+SDRAM system (" +
          format_fixed(rank_s * 1e3, 2) + " ms for the whole catalog)",
      table);
  return 0;
}
