// Sustained-throughput bench for `prcost serve`: closed-loop clients
// against one warm daemon, stepping the connection count.
//
// By default the bench self-hosts a serve::Server over a private
// Unix-domain socket (same event loop + dispatcher the CLI daemon runs) so
// CI needs no process choreography; --socket points it at an external
// daemon instead. Each step spawns N closed-loop client threads (send one
// request, wait for the response, repeat) over a mixed cache-hot workload
// - mostly plan/bitstream lookups with occasional explore and optimize
// requests, the shape a partitioner/scheduler front-end produces - and
// reports JSON on stdout for the perf-regression harness (bench_report).
//
// Clients model remote tenants: after each response a client "thinks" for
// --think-us microseconds (its own scheduling work, or network turnaround)
// before the next request. That is what makes the scaling claim
// meaningful: one tenant's closed loop is turnaround-bound and leaves the
// warm daemon mostly idle, while N tenants' think times overlap and the
// dispatcher batches their concurrent requests through the shared engine -
// so sustained rps grows with connections until the engine saturates.
// --think-us 0 degenerates to back-to-back hammering, which on a
// single-core host saturates the engine from one connection already.
//
// JSON shape:
//
//   {"steps":[{"connections":1,"requests_per_sec":...,"p50_ms":...,
//              "p99_ms":...,"shed_rate":...},...],
//    "requests_per_sec_1c":..., "requests_per_sec_peak":...,
//    "scaling_speedup":..., "plan_cache_hit_rate":...}
//
// "scaling_speedup" is sustained rps at the largest step over rps at one
// connection: the single-connection loop pays the full wakeup + turnaround
// chain per request, while concurrent connections let the dispatcher batch
// requests per cycle, so the fixed costs amortize even on one core.
//
//   perf_serve_scaling [--max-conns 8] [--seconds 1.5] [--requests N]
//                      [--think-us 200] [--socket PATH] [--max-queue N]
//                      [--mix-cycle N] [--out FILE]
//
// --requests N switches every step to a fixed per-client request count
// (deterministic work for CI smoke); --seconds is the per-step measurement
// window otherwise.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace {

using namespace prcost;
using Clock = std::chrono::steady_clock;

/// The mixed workload, one request line per slot; slots are consumed
/// round-robin per client (offset by client index so concurrent clients
/// interleave different ops). Plan and bitstream lookups dominate - after
/// warmup they are cache hits, the steady state a partitioner/scheduler
/// front-end drives - with one explore and one optimize slot per cycle of
/// `mix_cycle` for the heavier tail every real mix has (those re-run
/// ms-scale searches per request, so their frequency sets the floor on
/// average service time). Plan requests carry "cross_check":false: a
/// scheduler wants the cost model's answer, not a per-request PAR + full
/// generation verification.
std::vector<std::string> make_mix(std::size_t mix_cycle) {
  const std::vector<std::string> plan_prms = {"fir",  "mips", "sdram",
                                              "uart", "aes",  "crc32",
                                              "sobel"};
  const std::vector<std::string> bit_prms = {"fir", "sdram", "uart", "crc32"};
  std::vector<std::string> mix;
  for (std::size_t slot = 0; slot < mix_cycle; ++slot) {
    if (slot == mix_cycle / 3 && mix_cycle > 2) {
      mix.push_back(
          R"({"op":"explore","device":"xc6vlx240t","prms":["fir","sdram","uart"],"workers":1})");
      continue;
    }
    if (slot == (2 * mix_cycle) / 3 && mix_cycle > 2) {
      mix.push_back(
          R"({"op":"optimize","device":"xc6vlx240t","prms":["fir","uart"],"rounds":1,"proposals_per_round":1,"seed":3,"workers":1})");
      continue;
    }
    if (slot % 2 == 0) {
      mix.push_back(
          R"({"op":"plan","device":"xc5vlx110t","cross_check":false,"prm":")" +
          plan_prms[(slot / 2) % plan_prms.size()] + R"("})");
    } else {
      mix.push_back(R"({"op":"bitstream","device":"xc5vlx110t","prm":")" +
                    bit_prms[(slot / 2) % bit_prms.size()] + R"("})");
    }
  }
  return mix;
}

struct StepResult {
  int connections = 0;
  u64 requests = 0;
  u64 shed = 0;
  u64 errors = 0;  ///< error envelopes other than "overloaded"
  double seconds = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

serve::Client connect(const std::string& socket_path) {
  return serve::Client::connect_unix(socket_path);
}

/// One closed-loop measurement step at `connections` clients.
StepResult run_step(const std::string& socket_path,
                    const std::vector<std::string>& mix, int connections,
                    double seconds, u64 requests_per_client, u64 think_us) {
  std::atomic<bool> stop{false};
  std::mutex merge_mu;
  std::vector<double> latencies_ms;
  StepResult step;
  step.connections = connections;
  std::atomic<u64> total{0};
  std::atomic<u64> shed{0};
  std::atomic<u64> errors{0};

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(connections));
  const auto begin = Clock::now();
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      serve::Client client = connect(socket_path);
      std::vector<double> local;
      std::size_t slot = static_cast<std::size_t>(c) * 7;
      for (u64 sent = 0;
           requests_per_client != 0 ? sent < requests_per_client
                                    : !stop.load(std::memory_order_relaxed);
           ++sent) {
        const std::string& line = mix[slot++ % mix.size()];
        const auto t0 = Clock::now();
        const std::string response = client.request(line);
        local.push_back(
            std::chrono::duration<double, std::milli>{Clock::now() - t0}
                .count());
        if (response.find("\"error\"") != std::string::npos) {
          if (response.find("\"overloaded\"") != std::string::npos) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (think_us != 0) {
          std::this_thread::sleep_for(std::chrono::microseconds{think_us});
        }
      }
      total.fetch_add(local.size(), std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock{merge_mu};
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  if (requests_per_client == 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>{seconds});
    stop.store(true, std::memory_order_relaxed);
  }
  for (std::thread& t : clients) t.join();
  step.seconds =
      std::chrono::duration<double>{Clock::now() - begin}.count();

  step.requests = total.load();
  step.shed = shed.load();
  step.errors = errors.load();
  step.rps = step.seconds > 0
                 ? static_cast<double>(step.requests) / step.seconds
                 : 0.0;
  step.shed_rate = step.requests > 0 ? static_cast<double>(step.shed) /
                                           static_cast<double>(step.requests)
                                     : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  step.p50_ms = percentile(latencies_ms, 0.50);
  step.p99_ms = percentile(latencies_ms, 0.99);
  return step;
}

/// Read one counter out of an OpenMetrics scrape fetched over the wire
/// (works identically against the self-hosted server and an external
/// daemon).
double scrape_counter(const std::string& scrape, const std::string& name) {
  const auto at = scrape.find('\n' + name + ' ');
  if (at == std::string::npos) return 0.0;
  const auto value_at = at + 1 + name.size() + 1;
  return std::strtod(scrape.c_str() + value_at, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  int max_conns = 8;
  double seconds = 1.5;
  u64 requests_per_client = 0;
  u64 think_us = 200;
  std::string socket_path;
  std::size_t max_queue = 1024;
  std::size_t mix_cycle = 1024;
  std::string out_path = "-";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--max-conns") {
      max_conns = std::stoi(value);
    } else if (flag == "--seconds") {
      seconds = std::stod(value);
    } else if (flag == "--requests") {
      requests_per_client = std::stoull(value);
    } else if (flag == "--think-us") {
      think_us = std::stoull(value);
    } else if (flag == "--socket") {
      socket_path = value;
    } else if (flag == "--max-queue") {
      max_queue = std::stoul(value);
    } else if (flag == "--mix-cycle") {
      mix_cycle = std::stoul(value);
    } else if (flag == "--out") {
      out_path = value;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }
  if (max_conns < 1) max_conns = 1;

  // Self-host unless --socket points elsewhere: same Server the CLI runs.
  std::unique_ptr<api::Engine> engine;
  std::unique_ptr<serve::Server> server;
  std::thread server_thread;
  const bool self_hosted = socket_path.empty();
  if (self_hosted) {
    socket_path = "/tmp/prcost_serve_bench." +
                  std::to_string(static_cast<long>(::getpid())) + ".sock";
    engine = std::make_unique<api::Engine>();
    serve::ServerOptions options;
    options.unix_path = socket_path;
    options.max_queue = max_queue;
    server = std::make_unique<serve::Server>(*engine, options);
    server->start();
    server_thread = std::thread{[&] { server->run(); }};
  }

  if (mix_cycle < 2) mix_cycle = 2;
  const std::vector<std::string> mix = make_mix(mix_cycle);

  // Warmup: run the whole mix twice on one connection so the plan and
  // bitstream caches are hot; the measured steps then see the steady
  // state a long-lived daemon serves from.
  {
    serve::Client client = connect(socket_path);
    for (int round = 0; round < 2; ++round) {
      for (const std::string& line : mix) {
        const std::string response = client.request(line);
        if (response.find("\"error\"") != std::string::npos) {
          std::cerr << "warmup request failed: " << response << "\n";
          if (server) server->stop();
          if (server_thread.joinable()) server_thread.join();
          return 1;
        }
      }
    }
  }

  std::vector<StepResult> steps;
  for (int conns = 1; conns <= max_conns; conns *= 2) {
    steps.push_back(run_step(socket_path, mix, conns, seconds,
                             requests_per_client, think_us));
    std::cerr << "conns " << steps.back().connections << ": "
              << static_cast<u64>(steps.back().rps) << " req/s, p50 "
              << steps.back().p50_ms << " ms, p99 " << steps.back().p99_ms
              << " ms, shed " << steps.back().shed << "\n";
  }

  // Cache hit rate over the whole run, scraped over the wire like any
  // monitoring client would.
  double plan_hit_rate = 0.0;
  double bitstream_hit_rate = 0.0;
  {
    serve::Client client = connect(socket_path);
    const Json envelope = Json::parse(client.request(R"({"op":"metrics"})"));
    if (const Json* result = envelope.find("result")) {
      const std::string& scrape = result->find("openmetrics")->as_string();
      const double plan_hits =
          scrape_counter(scrape, "prcost_plan_cache_hits_total");
      const double plan_misses =
          scrape_counter(scrape, "prcost_plan_cache_misses_total");
      const double bit_hits =
          scrape_counter(scrape, "prcost_bitstream_cache_hits_total");
      const double bit_misses =
          scrape_counter(scrape, "prcost_bitstream_cache_misses_total");
      if (plan_hits + plan_misses > 0) {
        plan_hit_rate = plan_hits / (plan_hits + plan_misses);
      }
      if (bit_hits + bit_misses > 0) {
        bitstream_hit_rate = bit_hits / (bit_hits + bit_misses);
      }
    }
  }

  if (server) {
    server->stop();
    server_thread.join();
  }

  const StepResult& first = steps.front();
  const StepResult& last = steps.back();
  const double speedup = first.rps > 0 ? last.rps / first.rps : 0.0;

  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"mode\": \"" << (self_hosted ? "self-hosted" : "external")
       << "\",\n"
       << "  \"mix_size\": " << mix.size() << ",\n"
       << "  \"think_us\": " << think_us << ",\n"
       << "  \"steps\": [\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const StepResult& s = steps[i];
    json << "    {\"connections\": " << s.connections
         << ", \"requests\": " << s.requests
         << ", \"requests_per_sec\": " << s.rps
         << ", \"p50_ms\": " << s.p50_ms << ", \"p99_ms\": " << s.p99_ms
         << ", \"shed_rate\": " << s.shed_rate
         << ", \"errors\": " << s.errors << "}"
         << (i + 1 < steps.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"requests_per_sec_1c\": " << first.rps << ",\n"
       << "  \"requests_per_sec_peak\": " << last.rps << ",\n"
       << "  \"peak_p99_ms\": " << last.p99_ms << ",\n"
       << "  \"scaling_speedup\": " << speedup << ",\n"
       << "  \"plan_cache_hit_rate\": " << plan_hit_rate << ",\n"
       << "  \"bitstream_cache_hit_rate\": " << bitstream_hit_rate << "\n"
       << "}\n";

  if (out_path == "-" || out_path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream out{out_path};
    out << json.str();
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << json.str();
  }

  u64 errors = 0;
  for (const StepResult& s : steps) errors += s.errors;
  if (errors > 0) {
    std::cerr << "error: " << errors << " request(s) failed\n";
    return 1;
  }
  return 0;
}
