// Ablation: online scheduling policies on the event-driven runtime.
//
// Drives the src/sched runtime over a mixed 7-PRM bursty workload (fir,
// mips, sdram, aes, crc32, uart, matmul) and compares FCFS, priority, and
// prefetch-aware FCFS on throughput, deadline-miss rate, and effective
// reconfiguration overhead (reconfiguration seconds charged per task).
// Prefetch stages a hot PRM's partial bitstream from cold flash into DDR
// when its EWMA arrival-rate estimate crosses the threshold, so later
// reconfigurations fetch at warm-media speed.
//
// Built-in checks (any failure exits 1):
//   - same-seed determinism: every configuration is run twice and the two
//     reports must match bit-for-bit, per task;
//   - prefetch effectiveness: the prefetch-aware run must strictly lower
//     the effective reconfiguration overhead vs plain FCFS.
//
// Reports JSON on stdout and writes it to --out (default
// BENCH_online_scheduling.json, "-" disables the file).
//
//   ablation_online_scheduling [--tasks 280] [--seed 42]
//                              [--out BENCH_online_scheduling.json]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/requests.hpp"
#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "sched/generators.hpp"
#include "sched/scheduler.hpp"
#include "synth/synthesizer.hpp"
#include "util/json.hpp"

namespace {

using namespace prcost;

/// One configuration under comparison.
struct Variant {
  const char* name;
  sched::Policy policy;
  double prefetch_rate_hz;
};

bool reports_identical(const sched::Report& a, const sched::Report& b) {
  if (a.makespan_s != b.makespan_s || a.completed != b.completed ||
      a.reconfig_count != b.reconfig_count ||
      a.total_reconfig_s != b.total_reconfig_s ||
      a.reuse_hits != b.reuse_hits ||
      a.deadline_misses != b.deadline_misses ||
      a.cpu_fallbacks != b.cpu_fallbacks ||
      a.prefetches_issued != b.prefetches_issued ||
      a.prefetched_reconfigs != b.prefetched_reconfigs ||
      a.tasks.size() != b.tasks.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const sched::TaskOutcome& x = a.tasks[i];
    const sched::TaskOutcome& y = b.tasks[i];
    if (x.slot != y.slot || x.cpu_fallback != y.cpu_fallback ||
        x.reconfigured != y.reconfigured || x.prefetched != y.prefetched ||
        x.start_s != y.start_s || x.finish_s != y.finish_s) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_online_scheduling.json";
  u32 task_count = 280;
  u64 seed = 42;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--out") {
      out_path = value;
    } else if (flag == "--tasks") {
      task_count = narrow<u32>(parse_u64(value));
    } else if (flag == "--seed") {
      seed = parse_u64(value);
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }

  const Device& device = DeviceDb::instance().get("xc7k325t");
  const Family family = device.fabric.family();
  std::vector<PrmInfo> prms;
  for (const char* name :
       {"fir", "mips", "sdram", "aes", "crc32", "uart", "matmul"}) {
    const SynthesisResult synth =
        synthesize(api::make_builtin_prm(name), SynthOptions{family});
    const PrmRequirements req =
        PrmRequirements::from_report(synth.report);
    const auto plan = find_prr(req, device.fabric);
    if (!plan) {
      std::cerr << "error: no PRR for " << name << "\n";
      return 1;
    }
    prms.push_back(PrmInfo{name, req, plan->bitstream.total_bytes});
  }

  sched::ArrivalParams params;
  params.count = task_count;
  params.prm_count = narrow<u32>(prms.size());
  params.deadline_factor = 12.0;  // tight enough that policies differ
  params.seed = seed;
  const std::vector<sched::Task> tasks = sched::make_bursty(params);

  const Variant variants[] = {
      {"fcfs", sched::Policy::kFcfs, 0.0},
      {"priority", sched::Policy::kPriority, 0.0},
      {"prefetch", sched::Policy::kFcfs, 5.0},
  };

  TextTable table{{"variant", "makespan (ms)", "throughput (/s)",
                   "reconfigs", "warm", "reconfig/task (us)",
                   "miss rate", "cpu fallbacks"}};
  Json runs = Json::array();
  bool deterministic = true;
  double fcfs_overhead = 0;
  double prefetch_overhead = 0;
  for (const Variant& variant : variants) {
    sched::SchedulerConfig config;
    config.slot_count = 3;
    config.policy = variant.policy;
    config.prefetch_rate_hz = variant.prefetch_rate_hz;
    const sched::Report report = sched::run(prms, tasks, config);
    // Same-seed determinism: an identical rerun must be bit-identical.
    if (!reports_identical(report, sched::run(prms, tasks, config))) {
      std::cerr << "DETERMINISM FAILURE: variant " << variant.name
                << " diverged on an identical rerun\n";
      deterministic = false;
    }
    const double miss_rate =
        static_cast<double>(report.deadline_misses) /
        static_cast<double>(report.completed);
    if (std::string{variant.name} == "fcfs") {
      fcfs_overhead = report.reconfig_seconds_per_task;
    } else if (std::string{variant.name} == "prefetch") {
      prefetch_overhead = report.reconfig_seconds_per_task;
    }
    table.add_row({variant.name, format_fixed(report.makespan_s * 1e3, 2),
                   format_fixed(report.throughput_per_s, 1),
                   std::to_string(report.reconfig_count),
                   std::to_string(report.prefetched_reconfigs),
                   format_fixed(report.reconfig_seconds_per_task * 1e6, 1),
                   format_fixed(miss_rate, 3),
                   std::to_string(report.cpu_fallbacks)});
    Json run = Json::object();
    run.set("variant", variant.name)
        .set("makespan_s", report.makespan_s)
        .set("throughput_per_sec", report.throughput_per_s)
        .set("reconfig_count", report.reconfig_count)
        .set("reuse_hits", report.reuse_hits)
        .set("reconfig_seconds_per_task", report.reconfig_seconds_per_task)
        .set("prefetches_issued", report.prefetches_issued)
        .set("prefetched_reconfigs", report.prefetched_reconfigs)
        .set("deadline_miss_rate", miss_rate)
        .set("cpu_fallbacks", report.cpu_fallbacks)
        .set("mean_wait_s", report.mean_wait_s);
    runs.push_back(std::move(run));
  }
  bench::print_table(
      "Ablation: online scheduling policies (7 PRMs, bursty arrivals, "
      "3 PRR slots)",
      table);

  Json doc = Json::object();
  doc.set("bench", "ablation_online_scheduling")
      .set("device", device.name)
      .set("tasks", static_cast<u64>(task_count))
      .set("seed", seed)
      .set("deterministic", deterministic)
      .set("runs", std::move(runs));
  const std::string json = doc.dump();
  std::cout << json << '\n';
  if (out_path != "-") {
    std::ofstream out{out_path};
    out << json << '\n';
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
  }
  if (!deterministic) return 1;
  if (prefetch_overhead >= fcfs_overhead) {
    std::cerr << "PREFETCH FAILURE: prefetch-aware effective "
                 "reconfiguration overhead ("
              << prefetch_overhead * 1e6
              << " us/task) is not strictly below FCFS ("
              << fcfs_overhead * 1e6 << " us/task)\n";
    return 1;
  }
  return 0;
}
