// Fig. 1: the PRR search flow. The figure itself is a flowchart; what is
// measurable about it is the cost of executing it, which is the quantity
// the paper's productivity argument rests on ("take less than 5 minutes in
// all cases" for model evaluation vs hours for the PR flow). This
// google-benchmark binary times the search across devices, requirement
// sizes, and objectives, and the window-search primitive it is built on.
#include <benchmark/benchmark.h>

#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"

namespace {

using namespace prcost;

const Fabric& fabric_by_index(int index) {
  const auto& db = DeviceDb::instance();
  return db.all()[static_cast<std::size_t>(index) % db.all().size()].fabric;
}

void BM_FindPrr_PaperRecords(benchmark::State& state) {
  const auto& rec =
      paperdata::table5()[static_cast<std::size_t>(state.range(0))];
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_prr(rec.req, fabric));
  }
  state.SetLabel(std::string{rec.prm} + "/" + std::string{rec.device});
}
BENCHMARK(BM_FindPrr_PaperRecords)->DenseRange(0, 5);

void BM_FindPrr_ScalingWithDemand(benchmark::State& state) {
  const Fabric& fabric = DeviceDb::instance().get("xc6vlx240t").fabric;
  PrmRequirements req;
  req.lut_ff_pairs = static_cast<u64>(state.range(0));
  req.dsps = static_cast<u64>(state.range(0)) / 100;
  req.brams = static_cast<u64>(state.range(0)) / 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_prr(req, fabric));
  }
}
BENCHMARK(BM_FindPrr_ScalingWithDemand)->RangeMultiplier(4)->Range(64, 16384);

void BM_FindPrr_Objectives(benchmark::State& state) {
  const auto& rec = paperdata::table5_record("MIPS", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  SearchOptions options;
  options.objective = static_cast<SearchObjective>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_prr(rec.req, fabric, options));
  }
  state.SetLabel(state.range(0) == 0   ? "min-area"
                 : state.range(0) == 1 ? "first-feasible"
                                       : "min-bitstream");
}
BENCHMARK(BM_FindPrr_Objectives)->DenseRange(0, 2);

void BM_WindowSearch(benchmark::State& state) {
  const Fabric& fabric = fabric_by_index(static_cast<int>(state.range(0)));
  const ColumnDemand demand{5, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.find_window(demand));
  }
  state.SetLabel(DeviceDb::instance()
                     .all()[static_cast<std::size_t>(state.range(0))]
                     .name);
}
BENCHMARK(BM_WindowSearch)->DenseRange(0, 5);

void BM_EnumerateAllHeights(benchmark::State& state) {
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_prrs(rec.req, fabric));
  }
}
BENCHMARK(BM_EnumerateAllHeights);

}  // namespace
