// Table VI: post-place-and-route resource counts vs the synthesis report.
//
// Paper-recorded mode prints the published Table VI (absolute values and
// the parenthesized savings vs Table V). Full-flow mode runs OUR P&R
// simulator (implementation-level optimization passes + slice
// cross-packing + PRR-constrained placement) on the regenerated PRMs and
// prints the same deltas - the qualitative shape to check: LUT_FF/CLB
// savings of a few to ~30%, FF/DSP/BRAM unchanged.
#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "netlist/generators.hpp"
#include "paperdata/paper_dataset.hpp"
#include "par/par.hpp"
#include "synth/synthesizer.hpp"

namespace {

using namespace prcost;

std::string with_delta(u64 value, double delta_pct) {
  return std::to_string(value) + " (" + format_fixed(delta_pct, 1) + "%)";
}

double saving(u64 before, u64 after) {
  if (before == 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(after) /
                            static_cast<double>(before));
}

}  // namespace

int main() {
  // ---- paper-recorded Table VI -------------------------------------------
  {
    TextTable table{{"Parameter", "V5 FIR", "V5 MIPS", "V5 SDRAM", "V6 FIR",
                     "V6 MIPS", "V6 SDRAM"}};
    const auto row = [&](const char* name, auto value, auto delta) {
      std::vector<std::string> cells{name};
      for (const auto& rec : paperdata::table6()) {
        cells.push_back(with_delta(value(rec), delta(rec)));
      }
      table.add_row(std::move(cells));
    };
    using R = paperdata::TableVIRecord;
    row("LUT_FF_req", [](const R& r) { return r.req.lut_ff_pairs; },
        [](const R& r) { return r.d_lut_ff; });
    row("DSP_req", [](const R& r) { return r.req.dsps; },
        [](const R&) { return 0.0; });
    row("BRAM_req", [](const R& r) { return r.req.brams; },
        [](const R&) { return 0.0; });
    row("LUT_req", [](const R& r) { return r.req.luts; },
        [](const R& r) { return r.d_lut; });
    row("FF_req", [](const R& r) { return r.req.ffs; },
        [](const R& r) { return r.d_ff; });
    row("CLB_req", [](const R& r) { return r.clb_req; },
        [](const R& r) { return r.d_clb; });
    bench::print_table(
        "Table VI (paper-recorded): post-PAR requirements and savings vs "
        "Table V as published",
        table);
  }

  // ---- full-flow mode ------------------------------------------------------
  {
    TextTable table{{"PRM / device", "LUT_FF synth", "LUT_FF post-PAR",
                     "saving", "LUT saving", "FF delta", "DSP delta",
                     "BRAM delta", "routed"}};
    for (const Family family : {Family::kVirtex5, Family::kVirtex6}) {
      const Fabric& fabric =
          DeviceDb::instance()
              .get(family == Family::kVirtex5 ? "xc5vlx110t" : "xc6vlx75t")
              .fabric;
      for (int which = 0; which < 3; ++which) {
        const char* name = which == 0 ? "FIR" : which == 1 ? "MIPS" : "SDRAM";
        SynthesisResult synth = synthesize(
            which == 0   ? make_fir()
            : which == 1 ? make_mips5()
                         : make_sdram_ctrl(),
            SynthOptions{family});
        const auto plan =
            find_prr(PrmRequirements::from_report(synth.report), fabric);
        if (!plan) continue;
        ParOptions options;
        options.place.anneal_moves = 2000;
        const ParResult par = place_and_route(std::move(synth.netlist), *plan,
                                              fabric, options);
        std::string label = std::string{name} + " / " +
                            std::string{family_name(family)};
        if (!par.routed) {
          table.add_row({label, std::to_string(synth.report.lut_ff_pairs),
                         "-", "-", "-", "-", "-", "-", par.failure_reason});
          continue;
        }
        table.add_row(
            {label, std::to_string(synth.report.lut_ff_pairs),
             std::to_string(par.post_par.lut_ff_pairs),
             format_fixed(saving(synth.report.lut_ff_pairs,
                                 par.post_par.lut_ff_pairs),
                          1) +
                 "%",
             format_fixed(
                 saving(synth.report.slice_luts, par.post_par.slice_luts),
                 1) +
                 "%",
             std::to_string(static_cast<long long>(par.post_par.slice_ffs) -
                            static_cast<long long>(synth.report.slice_ffs)),
             std::to_string(static_cast<long long>(par.post_par.dsps) -
                            static_cast<long long>(synth.report.dsps)),
             std::to_string(static_cast<long long>(par.post_par.brams) -
                            static_cast<long long>(synth.report.brams)),
             "yes"});
      }
    }
    bench::print_table(
        "Table VI (full-flow mode): OUR P&R simulator vs OUR synthesis "
        "reports - expect LUT_FF/CLB savings, zero FF/DSP/BRAM change",
        table);
  }
  return 0;
}
