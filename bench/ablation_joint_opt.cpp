// Ablation: joint partition-schedule-floorplan optimization. For each
// fleet scale, a synthetic PRM fleet (element-wise-max shared-PRR groups,
// scattered static obstacles) is placed greedily in index order and then
// refined by the simulated-annealing joint optimizer (swap / relocate /
// resize / defrag-compact moves, each costed end to end through the
// bitstream, reconfiguration, and fault models). The table contrasts the
// fragmentation-driven rejection rate and makespan of both plans.
//
// Built-in checks (any failure exits 1):
//   - determinism: a second run with the same seed must reproduce the
//     accepted-move counts, the final cost, and the placed layout exactly;
//   - cost verification: the optimizer's from-scratch re-evaluation of the
//     surviving layout must reproduce the accepted cost bit for bit;
//   - no regression: annealing must never reject more PRMs than greedy.
//
// Reports JSON on stdout and writes it to --out (default
// BENCH_joint_opt.json, "-" disables the file).
//
//   ablation_joint_opt [--device xc5vlx110t] [--prm-counts 100,500,2000]
//                      [--seed 7] [--rounds 48] [--proposals 8]
//                      [--workers 0] [--out BENCH_joint_opt.json]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "device/device_db.hpp"
#include "opt/optimizer.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace prcost;

std::vector<u32> parse_counts(const std::string& list) {
  std::vector<u32> counts;
  std::string item;
  for (const char c : list + ",") {
    if (c == ',') {
      if (!item.empty()) counts.push_back(narrow<u32>(parse_u64(item)));
      item.clear();
    } else {
      item += c;
    }
  }
  return counts;
}

bool layouts_identical(const std::vector<PlacedPrr>& a,
                       const std::vector<PlacedPrr>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].first_col != b[i].first_col ||
        a[i].first_row != b[i].first_row ||
        a[i].plan.organization.h != b[i].plan.organization.h ||
        a[i].plan.window.width != b[i].plan.window.width ||
        a[i].plan.bitstream.total_bytes != b[i].plan.bitstream.total_bytes) {
      return false;
    }
  }
  return true;
}

bool runs_identical(const opt::OptimizeResult& a,
                    const opt::OptimizeResult& b) {
  return a.proposals == b.proposals && a.accepted == b.accepted &&
         a.accepted_by_kind == b.accepted_by_kind &&
         a.greedy.cost == b.greedy.cost && a.best.cost == b.best.cost &&
         layouts_identical(a.placements, b.placements);
}

}  // namespace

int main(int argc, char** argv) {
  std::string device_name = "xc5vlx110t";
  std::string out_path = "BENCH_joint_opt.json";
  std::vector<u32> prm_counts = {100, 500, 2000};
  opt::OptimizeOptions options;
  options.seed = 7;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--device") {
      device_name = value;
    } else if (flag == "--prm-counts") {
      prm_counts = parse_counts(value);
    } else if (flag == "--seed") {
      options.seed = parse_u64(value);
    } else if (flag == "--rounds") {
      options.rounds = narrow<u32>(parse_u64(value));
    } else if (flag == "--proposals") {
      options.proposals_per_round = narrow<u32>(parse_u64(value));
    } else if (flag == "--workers") {
      options.workers = parse_u64(value);
    } else if (flag == "--out") {
      out_path = value;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }

  const Device& device = DeviceDb::instance().get(device_name);
  bool ok = true;
  TextTable table{{"PRMs", "PRRs", "greedy rej", "anneal rej", "greedy mk",
                   "anneal mk", "moves", "largest-free", "verified"}};
  Json scales = Json::array();
  for (const u32 prm_count : prm_counts) {
    const opt::OptInstance instance =
        opt::make_prm_fleet(device, prm_count, 0, options.seed);
    opt::JointOptimizer optimizer{instance, options};
    Stopwatch watch;
    const opt::OptimizeResult result = optimizer.run();
    const double anneal_s = watch.seconds();
    const opt::OptimizeResult replay = opt::JointOptimizer{
        instance, options}.run();
    const bool deterministic = runs_identical(result, replay);
    const double greedy_rate = result.greedy_rejection_rate(prm_count);
    const double anneal_rate = result.best_rejection_rate(prm_count);
    const bool verified =
        result.cost_verified && deterministic && anneal_rate <= greedy_rate;
    ok = ok && verified;

    table.add_row(
        {std::to_string(prm_count),
         std::to_string(result.best.placed_groups) + "/" +
             std::to_string(instance.group_count),
         format_fixed(100.0 * greedy_rate, 1) + "%",
         format_fixed(100.0 * anneal_rate, 1) + "%",
         format_fixed(result.greedy.makespan_s * 1e3, 2) + " ms",
         format_fixed(result.best.makespan_s * 1e3, 2) + " ms",
         std::to_string(result.accepted) + "/" +
             std::to_string(result.proposals),
         std::to_string(result.best_frag.largest_free_rect),
         verified ? "yes" : "NO"});

    Json greedy = Json::object();
    greedy.set("rejected_prms", result.greedy.rejected_prms)
        .set("rejection_rate", greedy_rate)
        .set("placed_groups", result.greedy.placed_groups)
        .set("makespan_s", result.greedy.makespan_s)
        .set("fragmentation", result.greedy_frag.fragmentation);
    Json anneal = Json::object();
    anneal.set("rejected_prms", result.best.rejected_prms)
        .set("rejection_rate", anneal_rate)
        .set("placed_groups", result.best.placed_groups)
        .set("makespan_s", result.best.makespan_s)
        .set("fragmentation", result.best_frag.fragmentation)
        .set("relocation_s", result.best.relocation_s);
    Json moves = Json::object();
    moves.set("proposed", result.proposals)
        .set("accepted", result.accepted)
        .set("swap", result.accepted_by_kind[0])
        .set("relocate", result.accepted_by_kind[1])
        .set("resize", result.accepted_by_kind[2])
        .set("compact", result.accepted_by_kind[3]);
    Json scale = Json::object();
    scale.set("prms", static_cast<u64>(prm_count))
        .set("groups", static_cast<u64>(instance.group_count))
        .set("greedy", std::move(greedy))
        .set("anneal", std::move(anneal))
        .set("moves", std::move(moves))
        .set("seconds_per_anneal", anneal_s)
        .set("rejections_avoided",
             result.greedy.rejected_prms - result.best.rejected_prms)
        .set("cost_verified", result.cost_verified)
        .set("deterministic", deterministic);
    scales.push_back(std::move(scale));
  }
  bench::print_table(
      "Ablation: joint partition-schedule-floorplan optimization "
      "(greedy index-order placement vs simulated annealing with "
      "costed swap/relocate/resize/compact moves)",
      table);

  Json doc = Json::object();
  doc.set("bench", "ablation_joint_opt")
      .set("device", device.name)
      .set("seed", options.seed)
      .set("rounds", static_cast<u64>(options.rounds))
      .set("proposals_per_round", static_cast<u64>(options.proposals_per_round))
      .set("scales", std::move(scales))
      .set("all_verified", ok);
  const std::string json = doc.dump();
  std::cout << json << '\n';
  if (out_path != "-") {
    std::ofstream out{out_path};
    out << json << '\n';
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
  }
  if (!ok) {
    std::cerr << "error: joint-opt verification failed (determinism, cost "
                 "re-evaluation, or annealing regressed vs greedy)\n";
    return 1;
  }
  return 0;
}
