// Table VIII: execution times for synthesis and implementation of the
// PRMs, next to the cost-model evaluation time.
//
// The paper's point is the productivity gap: synthesis + cost model takes
// under five minutes while a full PR implementation takes far longer (and
// must be repeated per design point). Our substrates are simulators, so
// the absolute times shrink from minutes to milliseconds, but the *ratio*
// - model evaluation orders of magnitude cheaper than implementation - is
// the reproduced shape.
#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "netlist/generators.hpp"
#include "par/par.hpp"
#include "synth/synthesizer.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace prcost;
  TextTable table{{"process", "V5 FIR", "V5 MIPS", "V5 SDRAM", "V6 FIR",
                   "V6 MIPS", "V6 SDRAM"}};
  std::vector<std::string> synth_row{"synthesis"};
  std::vector<std::string> model_row{"cost models (PRR + bitstream)"};
  std::vector<std::string> impl_row{"implementation (P&R)"};
  std::vector<std::string> ratio_row{"implementation / model ratio"};

  for (const Family family : {Family::kVirtex5, Family::kVirtex6}) {
    const Fabric& fabric =
        DeviceDb::instance()
            .get(family == Family::kVirtex5 ? "xc5vlx110t" : "xc6vlx75t")
            .fabric;
    for (int which = 0; which < 3; ++which) {
      Stopwatch watch;
      SynthesisResult synth = synthesize(
          which == 0   ? make_fir()
          : which == 1 ? make_mips5()
                       : make_sdram_ctrl(),
          SynthOptions{family});
      const double synth_s = watch.seconds();

      watch.reset();
      const auto plan =
          find_prr(PrmRequirements::from_report(synth.report), fabric);
      const double model_s = watch.seconds();

      watch.reset();
      if (plan) {
        ParOptions options;
        options.place.anneal_moves = 20000;
        (void)place_and_route(std::move(synth.netlist), *plan, fabric,
                              options);
      }
      const double impl_s = watch.seconds();

      synth_row.push_back(format_minutes_seconds(synth_s));
      model_row.push_back(format_minutes_seconds(model_s));
      impl_row.push_back(format_minutes_seconds(impl_s));
      ratio_row.push_back(
          model_s > 0 ? format_fixed(impl_s / model_s, 0) + "x" : "-");
    }
  }
  table.add_row(synth_row);
  table.add_row(model_row);
  table.add_row(impl_row);
  table.add_row(ratio_row);
  bench::print_table(
      "Table VIII: flow phase runtimes (simulated substrates: absolute "
      "times are ms-scale, the model-vs-implementation gap is the result)",
      table);
  return 0;
}
