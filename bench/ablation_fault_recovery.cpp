// Ablation: fault rate vs effective reconfiguration time.
//
// Sweeps the bitstream corruption probability of the deterministic
// FaultInjector over the multitask workload and reports how the verified
// transfer loop (CRC check + bounded retry + exponential backoff) inflates
// the effective per-reconfiguration cost, alongside the closed-form
// expectation E[attempts] = (1-p^n)/(1-p) from expected_retry_cost. At
// rate 0 the simulation is bit-identical to the fault-free path, so the
// first row doubles as a regression anchor.
//
// Reports JSON on stdout and writes it to --out (default
// BENCH_fault_recovery.json, "-" disables the file).
//
//   ablation_fault_recovery [--tasks 150] [--out BENCH_fault_recovery.json]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "multitask/simulator.hpp"
#include "paperdata/paper_dataset.hpp"
#include "reconfig/baselines.hpp"
#include "reconfig/faults.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace prcost;
  std::string out_path = "BENCH_fault_recovery.json";
  u32 task_count = 150;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--out") {
      out_path = value;
    } else if (flag == "--tasks") {
      task_count = narrow<u32>(parse_u64(value));
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }

  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  std::vector<PrmInfo> prms;
  for (const char* name : {"FIR", "MIPS", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, "xc5vlx110t");
    const auto plan = find_prr(rec.req, device.fabric);
    prms.push_back(PrmInfo{name, rec.req, plan->bitstream.total_bytes});
  }

  WorkloadParams wp;
  wp.count = task_count;
  wp.mean_interarrival_s = 1.0e-3;
  wp.mean_exec_s = 2.0e-3;
  const auto workload = make_workload(wp);

  SimConfig base;
  base.prr_count = 2;
  base.policy = SchedPolicy::kFcfs;  // no scheduler rescue

  // Fault-free anchor: the per-transfer cost the retry model expects.
  const SimResult clean = simulate(prms, workload, base);
  const double clean_reconfig_s =
      clean.total_reconfig_s / static_cast<double>(clean.reconfig_count);

  TextTable table{{"fault rate", "makespan (ms)", "reconfigs", "retries",
                   "failed", "dropped", "eff. reconfig (us)",
                   "model (us)", "model E[attempts]"}};
  Json runs = Json::array();
  for (const double rate : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
    FaultProfile profile;
    profile.fault_rate = rate;
    profile.seed = 0xFA017;
    FaultInjector injector{profile};
    SimConfig config = base;
    if (profile.active()) config.faults = &injector;
    const SimResult r = simulate(prms, workload, config);
    const double eff =
        r.reconfig_count != 0
            ? r.total_reconfig_s / static_cast<double>(r.reconfig_count)
            : 0.0;
    const RetryExpectation model =
        expected_retry_cost(clean_reconfig_s, rate, config.retry);
    table.add_row({format_fixed(rate, 2),
                   format_fixed(r.makespan_s * 1e3, 2),
                   std::to_string(r.reconfig_count),
                   std::to_string(r.retry_attempts),
                   std::to_string(r.failed_reconfigs),
                   std::to_string(r.dropped_tasks),
                   format_fixed(eff * 1e6, 1),
                   format_fixed(model.expected_time_s * 1e6, 1),
                   format_fixed(model.expected_attempts, 3)});
    Json run = Json::object();
    run.set("fault_rate", rate)
        .set("makespan_s", r.makespan_s)
        .set("reconfig_count", r.reconfig_count)
        .set("retry_attempts", r.retry_attempts)
        .set("failed_reconfigs", r.failed_reconfigs)
        .set("dropped_tasks", r.dropped_tasks)
        .set("total_retry_backoff_s", r.total_retry_backoff_s)
        .set("total_fault_wasted_s", r.total_fault_wasted_s)
        .set("effective_reconfig_s", eff)
        .set("model_expected_time_s", model.expected_time_s)
        .set("model_expected_attempts", model.expected_attempts)
        .set("model_success_probability", model.success_probability);
    runs.push_back(std::move(run));
  }
  bench::print_table(
      "Ablation: fault rate vs effective reconfiguration time "
      "(verified transfer, retry budget 3)",
      table);

  Json doc = Json::object();
  doc.set("bench", "ablation_fault_recovery")
      .set("device", device.name)
      .set("tasks", static_cast<u64>(task_count))
      .set("clean_reconfig_s", clean_reconfig_s)
      .set("runs", std::move(runs));
  const std::string json = doc.dump();
  std::cout << json << '\n';
  if (out_path != "-") {
    std::ofstream out{out_path};
    out << json << '\n';
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
  }
  return 0;
}
