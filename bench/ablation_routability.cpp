// Ablation H: routing pressure vs packing density (the paper's caveat that
// "high RUs lead to densely packed PRRs that may eventually cause routing
// problems", amplified when static-region nets must cross them). Place the
// three paper PRRs on the LX110T, sample static nets over the remaining
// fabric, and score each PRR; then re-run with deliberately relaxed
// (bigger, lower-RU) PRRs to show the risk/area trade.
#include "bench/bench_util.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "par/routability.hpp"

namespace {

using namespace prcost;

void run_scenario(const std::string& title, double inflate) {
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  Floorplanner floorplanner{fabric};
  std::vector<double> densities;
  for (const char* name : {"MIPS", "FIR", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, "xc5vlx110t");
    PrmRequirements req = rec.req;
    // Inflating the requirement produces a bigger, lower-RU PRR.
    req.lut_ff_pairs =
        static_cast<u64>(static_cast<double>(req.lut_ff_pairs) * inflate);
    const auto placed = floorplanner.place(name, req);
    if (!placed) continue;
    // Density = the ORIGINAL demand over the (possibly inflated) PRR.
    densities.push_back(
        static_cast<double>(clb_req(rec.req, fabric.traits())) /
        static_cast<double>(placed->plan.available.clbs));
  }
  const auto pressures =
      estimate_route_pressure(floorplanner, fabric, densities);
  TextTable table{{"PRR", "PRR cells", "CLB density", "crossing nets",
                   "risk score"}};
  for (std::size_t p = 0; p < pressures.size(); ++p) {
    const auto& placed = floorplanner.placements()[p];
    table.add_row({pressures[p].name,
                   std::to_string(placed.plan.organization.size()),
                   format_fixed(pressures[p].packing_density * 100, 1) + "%",
                   std::to_string(pressures[p].crossing_nets),
                   format_fixed(pressures[p].risk, 4)});
  }
  bench::print_table(title, table);
}

}  // namespace

int main() {
  run_scenario(
      "Ablation H1: routing pressure with minimum-size (high-RU) PRRs",
      1.0);
  run_scenario(
      "Ablation H2: same PRMs with 1.5x-relaxed PRRs (lower density, lower "
      "risk, more area)",
      1.5);
  return 0;
}
