// Ablation A: bitstream-size model accuracy against the generator across
// the whole device catalog and every feasible organization of a grid of
// synthetic requirements - far beyond the paper's six points. The model is
// exact by construction; this bench proves it stays exact everywhere and
// reports the aggregate.
#include "bench/bench_util.hpp"
#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "util/parallel.hpp"

int main() {
  using namespace prcost;

  // Requirement grid.
  std::vector<PrmRequirements> reqs;
  for (const u64 pairs : {50u, 300u, 1300u, 2618u, 5000u}) {
    for (const u64 dsps : {0u, 4u, 27u}) {
      for (const u64 brams : {0u, 2u, 6u}) {
        PrmRequirements req;
        req.lut_ff_pairs = pairs;
        req.luts = pairs * 7 / 10;
        req.ffs = pairs / 2;
        req.dsps = dsps;
        req.brams = brams;
        reqs.push_back(req);
      }
    }
  }

  TextTable table{{"device", "plans checked", "exact matches", "mismatches",
                   "min bytes", "max bytes"}};
  for (const Device& device : DeviceDb::instance().all()) {
    u64 checked = 0, exact = 0, mismatch = 0;
    u64 min_bytes = ~0ull, max_bytes = 0;
    for (const PrmRequirements& req : reqs) {
      for (const PrrPlan& plan : enumerate_prrs(req, device.fabric)) {
        const auto bytes =
            to_bytes(generate_bitstream(plan, device.fabric.family()),
                     device.fabric.family());
        ++checked;
        if (bytes.size() == plan.bitstream.total_bytes) {
          ++exact;
        } else {
          ++mismatch;
        }
        min_bytes = std::min<u64>(min_bytes, bytes.size());
        max_bytes = std::max<u64>(max_bytes, bytes.size());
      }
    }
    table.add_row({device.name, std::to_string(checked),
                   std::to_string(exact), std::to_string(mismatch),
                   checked ? std::to_string(min_bytes) : "-",
                   checked ? std::to_string(max_bytes) : "-"});
  }
  bench::print_table(
      "Ablation A: Eq. (18)-(23) model vs generated bitstreams over the "
      "full catalog (expect zero mismatches)",
      table);
  return 0;
}
