// Fig. 2: the partial bitstream structure for Virtex-5 FPGAs - initial
// words, per-row configuration words, BRAM initialization words (when the
// PRR contains BRAM columns), final words. This bench regenerates the
// figure as a section-by-section breakdown of a real generated bitstream
// for a 2-row CLB+DSP+BRAM PRR (the shape drawn in the paper) plus the
// six Table V bitstreams.
#include "bench/bench_util.hpp"
#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"

namespace {

using namespace prcost;

void breakdown(const std::string& title, const PrrPlan& plan, Family family) {
  const auto words = generate_bitstream(plan, family);
  const auto layout = parse_bitstream(words, family);
  TextTable table{{"section", "words", "bytes", "detail"}};
  const FamilyTraits& t = traits(family);
  table.add_row({"initial words (IW)", std::to_string(layout.initial_words),
                 std::to_string(layout.initial_words * t.bytes_word),
                 "sync + RCRC + IDCODE + WCFG"});
  for (const FdriBurst& burst : layout.bursts) {
    const bool bram = burst.far.block == FrameBlock::kBramContent;
    table.add_row(
        {bram ? "BRAM init words (NDW_BRAM)" : "config words (NCW_row)",
         std::to_string(burst.words + t.far_fdri),
         std::to_string((burst.words + t.far_fdri) * t.bytes_word),
         far_to_string(burst.far) + ", " + std::to_string(burst.frames) +
             " frames"});
  }
  table.add_row({"final words (FW)", std::to_string(layout.final_words),
                 std::to_string(layout.final_words * t.bytes_word),
                 "LFRM + CRC + DESYNC"});
  table.add_separator();
  table.add_row({"total", std::to_string(layout.total_words),
                 std::to_string(layout.total_words * t.bytes_word),
                 std::string{"crc "} + (layout.crc_ok ? "ok" : "BAD")});
  bench::print_table(title, table);
}

}  // namespace

int main() {
  // The exact shape Fig. 2 draws: two rows containing CLBs, DSPs and BRAMs.
  {
    PrrPlan plan;
    plan.organization.h = 2;
    plan.organization.columns = ColumnDemand{2, 1, 1};
    plan.window = ColumnWindow{10, plan.organization.width()};
    plan.bitstream = estimate_bitstream(plan.organization,
                                        traits(Family::kVirtex5));
    breakdown(
        "Fig. 2: partial bitstream structure, 2-row CLB+DSP+BRAM PRR "
        "(Virtex-5)",
        plan, Family::kVirtex5);
  }
  // The six Table V bitstreams, summarized.
  TextTable summary{{"PRM", "device", "IW", "config bursts", "BRAM bursts",
                     "FW", "total words"}};
  for (const auto& rec : paperdata::table5()) {
    const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
    const auto plan = find_prr(rec.req, fabric);
    if (!plan) continue;
    const auto layout =
        parse_bitstream(generate_bitstream(*plan, rec.family), rec.family);
    summary.add_row({std::string{rec.prm}, std::string{rec.device},
                     std::to_string(layout.initial_words),
                     std::to_string(layout.config_burst_count()),
                     std::to_string(layout.bram_burst_count()),
                     std::to_string(layout.final_words),
                     std::to_string(layout.total_words)});
  }
  bench::print_table("Fig. 2 summary across the Table V PRMs", summary);
  return 0;
}
