// Bitstream pipeline throughput bench: words/sec with the sliced CRC +
// preallocated generator vs the pre-PR bit-serial path, plus the cached
// hit path.
//
// Builds a --prms-sized workload of distinct built-in PRMs, plans each on
// --device, and generates every plan's partial bitstream three ways:
//
//   bit_serial  - a local replica of the pre-slicing generator (word-at-a-
//                 time push_back + BitSerialConfigCrc), the baseline;
//   sliced      - generate_bitstream_into with a reused scratch buffer
//                 (dispatched span CRC - hardware when available - one
//                 exact reserve, bulk payload spans);
//   cached      - generate_bitstream_cached steady-state hits.
//
// A fourth section ("hw") times the raw config-CRC kernel itself over a
// large FDRI payload for every available implementation - bit-serial,
// sliced tables, SSE4.2 CRC32, PCLMUL folding - reporting GB/s and the
// speedup of each hardware path over the sliced baseline.
//
// Timing discipline: every section runs one untimed warmup pass (faults
// in code paths, caches, and the branch predictor) and then reports the
// MINIMUM over --repeats individually-timed passes, which is the standard
// noise-robust estimator for deterministic kernels (the mean smears
// scheduler preemptions into the result).
//
// Built-in verification: all generation paths produce byte-identical
// words per plan, and every CRC implementation agrees with the
// bit-serial oracle on a randomized stream; the process exits 1 when any
// check fails. Reports JSON on stdout and writes it to --out (default
// BENCH_bitstream.json, "-" disables the file) to seed the perf
// trajectory.
//
//   perf_bitstream_throughput [--device xc5vlx110t] [--prms 7]
//                             [--repeats 5] [--out BENCH_bitstream.json]
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bitstream/bitstream_cache.hpp"
#include "bitstream/crc.hpp"
#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "netlist/generators.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace prcost;

/// Replica of the pre-slicing generator: word-at-a-time output growth and
/// the bit-serial CRC fed per payload word. This is the baseline the
/// acceptance criterion measures speedup against.
std::vector<u32> bit_serial_generate(const PrrPlan& plan, Family family,
                                     const GeneratorOptions& options = {}) {
  const FamilyTraits& t = traits(family);
  const PrrOrganization& org = plan.organization;
  const u32 idcode =
      options.idcode != 0 ? options.idcode : default_idcode(family);
  std::vector<u32> out = header_words(family, idcode);

  BitSerialConfigCrc crc;
  crc.update(ConfigReg::kIdcode, idcode);
  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kWcfg));
  crc.update(ConfigReg::kMask, 0);
  if (family == Family::kVirtex6 || family == Family::kSeries7) {
    crc.update(ConfigReg::kCtl0, 0);
  }

  Rng payload{options.payload_seed};
  const auto next_payload_word = [&]() -> u32 {
    switch (options.payload) {
      case PayloadKind::kRandom: return static_cast<u32>(payload());
      case PayloadKind::kZeros: return 0;
      case PayloadKind::kSparse:
        return payload.chance(options.sparse_density)
                   ? static_cast<u32>(payload())
                   : 0u;
    }
    return 0;
  };

  const u64 cfg_frames = checked_mul(org.columns.clb_cols, t.cf_clb) +
                         checked_mul(org.columns.dsp_cols, t.cf_dsp) +
                         checked_mul(org.columns.bram_cols, t.cf_bram) + 1;
  const u64 cfg_words = checked_mul(cfg_frames, t.frame_size);
  const u64 bram_frames =
      org.columns.bram_cols > 0
          ? checked_mul(org.columns.bram_cols, t.df_bram) + 1
          : 0;
  const u64 bram_words = checked_mul(bram_frames, t.frame_size);

  const auto emit_burst = [&](FrameBlock block, u32 row, u64 word_count) {
    out.push_back(cfg::kNoop);
    const FrameAddress far{block, row, plan.window.first_col, 0};
    const u32 far_word = encode_far(far);
    out.push_back(type1(PacketOp::kWrite, ConfigReg::kFar, 1));
    out.push_back(far_word);
    crc.update(ConfigReg::kFar, far_word);
    out.push_back(type1(PacketOp::kWrite, ConfigReg::kFdri, 0));
    out.push_back(type2(PacketOp::kWrite, narrow<u32>(word_count)));
    for (u64 w = 0; w < word_count; ++w) {
      const u32 word = next_payload_word();
      out.push_back(word);
      crc.update(ConfigReg::kFdri, word);
    }
  };
  for (u32 row = 0; row < org.h; ++row) {
    emit_burst(FrameBlock::kInterconnect, plan.first_row + row, cfg_words);
    if (org.columns.bram_cols > 0) {
      emit_burst(FrameBlock::kBramContent, plan.first_row + row, bram_words);
    }
  }

  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kLfrm));
  const std::vector<u32> trailer = trailer_words(family, crc.value());
  out.insert(out.end(), trailer.begin(), trailer.end());
  return out;
}

/// Sliced CRC vs bit-serial oracle on a randomized word/register stream.
bool crc_matches_oracle() {
  Rng rng{0xC4C1u};
  ConfigCrc sliced;
  BitSerialConfigCrc oracle;
  for (int i = 0; i < 5000; ++i) {
    const u32 data = static_cast<u32>(rng());
    const auto reg = static_cast<ConfigReg>(rng() % 32);
    sliced.update(reg, data);
    oracle.update(reg, data);
    if (sliced.value() != oracle.value()) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string device_name = "xc5vlx110t";
  std::size_t prm_count = 7;
  int repeats = 5;
  std::string out_path = "BENCH_bitstream.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--device") {
      device_name = value;
    } else if (flag == "--prms") {
      prm_count = std::stoul(value);
    } else if (flag == "--repeats") {
      repeats = std::stoi(value);
    } else if (flag == "--out") {
      out_path = value;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }

  const Device& device = DeviceDb::instance().get(device_name);
  const Family family = device.fabric.family();

  // The 7-PRM workload of the acceptance criterion: distinct built-in
  // PRMs, each planned on the device (distinct plans => distinct cache
  // keys).
  const std::vector<Netlist> designs = {
      make_fir(),   make_mips5(), make_sdram_ctrl(), make_aes_round(),
      make_crc32(), make_uart(),  make_matmul(),     make_sobel(),
      make_fft_stage()};
  std::vector<PrrPlan> plans;
  for (std::size_t i = 0; i < designs.size() && plans.size() < prm_count;
       ++i) {
    const SynthesisResult result =
        synthesize(designs[i], SynthOptions{family});
    const auto plan =
        find_prr(PrmRequirements::from_report(result.report), device.fabric);
    if (!plan) continue;  // PRM does not fit this device; skip
    plans.push_back(*plan);
  }
  if (plans.empty()) {
    std::cerr << "error: no PRM fits " << device.name << "\n";
    return 1;
  }

  // ---- built-in verification: all paths byte-identical ------------------
  bool identical = crc_matches_oracle();
  u64 words_per_pass = 0;
  set_bitstream_cache_enabled(true);
  bitstream_cache_clear();
  for (const PrrPlan& plan : plans) {
    const std::vector<u32> baseline = bit_serial_generate(plan, family);
    const std::vector<u32> sliced = generate_bitstream(plan, family);
    const auto cached = generate_bitstream_cached(plan, family);
    identical = identical && baseline == sliced && baseline == *cached;
    words_per_pass += baseline.size();
  }
  const u64 bytes_per_pass =
      words_per_pass * device.fabric.traits().bytes_word;

  // ---- timings ----------------------------------------------------------
  // One untimed warmup pass, then the minimum of `repeats` timed passes.
  const auto per_pass_seconds = [&](const auto& one_pass) {
    one_pass();  // warmup
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      Stopwatch watch;
      one_pass();
      best = std::min(best, watch.seconds());
    }
    return best;
  };

  const double bit_serial_s = per_pass_seconds([&] {
    for (const PrrPlan& plan : plans) {
      const std::vector<u32> words = bit_serial_generate(plan, family);
      if (words.empty()) std::abort();  // keep the work observable
    }
  });

  std::vector<u32> scratch;
  const double sliced_s = per_pass_seconds([&] {
    for (const PrrPlan& plan : plans) {
      generate_bitstream_into(scratch, plan, family);
      if (scratch.empty()) std::abort();
    }
  });

  // Cached steady state: the verification pass above already populated the
  // cache, so every lookup here hits.
  const BitstreamCacheStats before = bitstream_cache_stats();
  const double cached_s = per_pass_seconds([&] {
    for (const PrrPlan& plan : plans) {
      if (generate_bitstream_cached(plan, family)->empty()) std::abort();
    }
  });
  const BitstreamCacheStats after = bitstream_cache_stats();
  const u64 hits = after.hits - before.hits;
  const u64 misses = after.misses - before.misses;
  const double hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);

  // ---- raw config-CRC kernel throughput (per implementation) ------------
  // A flat 4 MiB FDRI payload fed through config_crc_advance: the pure
  // CRC cost, isolated from packet emission. State is threaded between
  // passes so the compiler cannot hoist the work.
  const std::size_t crc_words = 1u << 20;
  std::vector<u32> crc_payload(crc_words);
  Rng crc_payload_rng{0x37C3u};
  for (u32& word : crc_payload) word = static_cast<u32>(crc_payload_rng());
  const std::span<const u32> crc_span{crc_payload};
  const double crc_gb =
      static_cast<double>(crc_words * sizeof(u32)) / 1e9;

  struct CrcTiming {
    CrcImpl impl;
    const char* key;
    double seconds = 0;
    u32 crc = 0;
  };
  std::vector<CrcTiming> crc_timings;
  for (const auto& [impl, key] :
       {std::pair{CrcImpl::kBitSerial, "bit_serial"},
        std::pair{CrcImpl::kSliced, "sliced"},
        std::pair{CrcImpl::kHwCrc32, "hw_crc32"},
        std::pair{CrcImpl::kHwClmul, "hw_clmul"}}) {
    if (!crc_impl_available(impl)) continue;
    CrcTiming timing{impl, key};
    timing.crc = config_crc_advance(impl, 0, ConfigReg::kFdri, crc_span);
    u32 state = timing.crc;  // thread state so passes stay observable
    timing.seconds = per_pass_seconds([&] {
      state = config_crc_advance(impl, state, ConfigReg::kFdri, crc_span);
    });
    if (state == 0xA5A5A5A5u) std::abort();  // keep `state` live
    crc_timings.push_back(timing);
  }
  double crc_sliced_s = 0;
  for (const CrcTiming& timing : crc_timings) {
    if (timing.impl == CrcImpl::kSliced) crc_sliced_s = timing.seconds;
    identical = identical && timing.crc == crc_timings.front().crc;
  }

  const double words = static_cast<double>(words_per_pass);
  const double mb = static_cast<double>(bytes_per_pass) / 1e6;
  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"device\": \"" << device.name << "\",\n"
       << "  \"prms\": " << plans.size() << ",\n"
       << "  \"repeats\": " << repeats << ",\n"
       << "  \"words_per_pass\": " << words_per_pass << ",\n"
       << "  \"bytes_per_pass\": " << bytes_per_pass << ",\n"
       << "  \"bit_serial\": {\"seconds_per_pass\": " << bit_serial_s
       << ", \"words_per_sec\": " << words / bit_serial_s
       << ", \"mb_per_sec\": " << mb / bit_serial_s << "},\n"
       << "  \"sliced\": {\"seconds_per_pass\": " << sliced_s
       << ", \"words_per_sec\": " << words / sliced_s
       << ", \"mb_per_sec\": " << mb / sliced_s
       << ", \"speedup_vs_bit_serial\": " << bit_serial_s / sliced_s
       << "},\n"
       << "  \"cached\": {\"seconds_per_pass\": " << cached_s
       << ", \"words_per_sec\": " << words / cached_s
       << ", \"mb_per_sec\": " << mb / cached_s
       << ", \"hit_rate\": " << hit_rate
       << ", \"speedup_vs_bit_serial\": " << bit_serial_s / cached_s
       << "},\n"
       << "  \"hw\": {\n"
       << "    \"crc_bytes\": " << crc_words * sizeof(u32) << ",\n"
       << "    \"active\": \"" << crc_impl_name(active_crc_impl()) << "\"";
  for (const CrcTiming& timing : crc_timings) {
    json << ",\n    \"" << timing.key
         << "\": {\"seconds_per_pass\": " << timing.seconds
         << ", \"gb_per_sec\": " << crc_gb / timing.seconds;
    if (timing.impl != CrcImpl::kSliced && crc_sliced_s > 0) {
      json << ", \"speedup_vs_sliced\": " << crc_sliced_s / timing.seconds;
    }
    json << "}";
  }
  json << "\n  },\n"
       << "  \"identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";

  std::cout << json.str();
  if (out_path != "-") {
    std::ofstream out{out_path};
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    out << json.str();
  }
  if (!identical) {
    std::cerr << "error: generation paths diverged (byte-identity check)\n";
    return 1;
  }
  return 0;
}
