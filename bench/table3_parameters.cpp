// Table III: parameters of the partial bitstream size cost model
// (definitional legend for Tables IV and VII; implemented by
// cost/bitstream_model.hpp).
#include "bench/bench_util.hpp"

int main() {
  using namespace prcost;
  TextTable table{{"Parameter", "Description"}};
  table.add_row({"IW", "Number of initial words"});
  table.add_row({"FW", "Number of final words"});
  table.add_row({"FAR_FDRI", "FAR/FDRI initialization words per row"});
  table.add_row({"NCW_row", "Configuration words in a PRR row"});
  table.add_row({"NDW_BRAM", "BRAM initialization words in a PRR row"});
  table.add_row({"NCF_CLB", "CLB configuration frames in a PRR row"});
  table.add_row({"NCF_DSP", "DSP configuration frames in a PRR row"});
  table.add_row({"NCF_BRAM", "BRAM configuration frames in a PRR row"});
  table.add_row({"CF_CLB", "Configuration frames per CLB column"});
  table.add_row({"CF_DSP", "Configuration frames per DSP column"});
  table.add_row({"CF_BRAM", "Configuration frames per BRAM column"});
  table.add_row({"DF_BRAM", "Initialization frames per BRAM column"});
  table.add_row({"FR_size", "Frame size in words"});
  table.add_row({"Bytes_word", "Number of bytes per word"});
  table.add_row({"H", "Number of rows in the PRR"});
  table.add_row({"S_bitstream", "Size of partial bitstream in bytes"});
  bench::print_table(
      "Table III: parameters of the partial bitstream size cost model "
      "(implemented by cost/bitstream_model.hpp)",
      table);
  return 0;
}
