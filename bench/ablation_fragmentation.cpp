// Ablation D: internal fragmentation vs PRR height - the behaviour behind
// Eqs. (13)-(17). For each paper PRM, sweep every feasible H on its device
// and report PRR size, utilization, and predicted bitstream size; the
// minimum-area row (what Table V picks) is marked. Shows why "oversized
// PRRs impose longer ... reconfiguration time" (Section I): bitstream
// bytes track H*W, not the PRM's actual resource usage.
#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"

int main() {
  using namespace prcost;
  for (const auto& rec : paperdata::table5()) {
    const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
    const auto best = find_prr(rec.req, fabric);
    const auto plans = enumerate_prrs(rec.req, fabric);
    TextTable table{{"H", "W (CLB/DSP/BRAM)", "PRR size", "RU_CLB", "RU_DSP",
                     "RU_BRAM", "bitstream bytes", "chosen"}};
    for (const PrrPlan& plan : plans) {
      const auto& o = plan.organization;
      const bool chosen = best && o.h == best->organization.h &&
                          o.columns.clb_cols ==
                              best->organization.columns.clb_cols;
      table.add_row({std::to_string(o.h),
                     std::to_string(o.columns.clb_cols) + "/" +
                         std::to_string(o.columns.dsp_cols) + "/" +
                         std::to_string(o.columns.bram_cols),
                     std::to_string(o.size()), bench::pct(plan.ru.clb),
                     bench::pct(plan.ru.dsp), bench::pct(plan.ru.bram),
                     std::to_string(plan.bitstream.total_bytes),
                     chosen ? "<== Table V" : ""});
    }
    bench::print_table("Ablation D: fragmentation sweep for " +
                           std::string{rec.prm} + " on " +
                           std::string{rec.device},
                       table);
  }
  return 0;
}
