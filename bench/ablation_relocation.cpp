// Ablation G: on-chip hardware task relocation (the authors' HTR prior
// work [5][6]) vs reconfiguring from storage. Moving a running PRM to a
// compatible PRR via capture/readback/rewrite/restore never touches
// external storage, so it beats a fresh reconfiguration whenever the
// bitstream would come from slow media - and loses to a DDR-resident
// bitstream because relocation crosses the ICAP twice.
#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "htr/relocation.hpp"
#include "paperdata/paper_dataset.hpp"
#include "reconfig/controllers.hpp"

int main() {
  using namespace prcost;
  TextTable table{{"PRM/device", "context bytes", "relocate",
                   "reload (CompactFlash)", "reload (Flash)", "reload (DDR)"}};
  for (const auto& rec : paperdata::table5()) {
    const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
    const auto plan = find_prr(rec.req, fabric);
    if (!plan) continue;
    const IcapModel icap = default_icap(rec.family);
    const RelocationTime reloc =
        relocation_time(plan->organization, fabric.traits(), icap);
    const ContextCost context =
        context_cost(plan->organization, fabric.traits());
    const DmaIcapController dma{icap};
    const auto reload_ms = [&](StorageMedia media) {
      return format_fixed(
                 dma.estimate(plan->bitstream.total_bytes, media).total_s *
                     1e3,
                 3) +
             " ms";
    };
    table.add_row({std::string{rec.prm} + "/" + std::string{rec.device},
                   std::to_string(context.save_bytes),
                   format_fixed(reloc.total_s * 1e3, 3) + " ms",
                   reload_ms(StorageMedia::kCompactFlash),
                   reload_ms(StorageMedia::kFlash),
                   reload_ms(StorageMedia::kDdrSdram)});
  }
  bench::print_table(
      "Ablation G: HTR relocation vs reloading the partial bitstream from "
      "storage (relocation wins against CF/flash, loses to DDR)",
      table);
  return 0;
}
