// Ablation G: on-chip hardware task relocation (the authors' HTR prior
// work [5][6]) vs reconfiguring from storage. Moving a running PRM to a
// compatible PRR via capture/readback/rewrite/restore never touches
// external storage, so it beats a fresh reconfiguration whenever the
// bitstream would come from slow media - and loses to a DDR-resident
// bitstream because relocation crosses the ICAP twice.
//
// Reports JSON on stdout (perf-bench schema, flattened by bench_report)
// and writes it to --out (default BENCH_relocation.json, "-" disables
// the file).
//
//   ablation_relocation [--out BENCH_relocation.json]
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "htr/relocation.hpp"
#include "paperdata/paper_dataset.hpp"
#include "reconfig/controllers.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace prcost;
  std::string out_path = "BENCH_relocation.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--out") {
      out_path = value;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }

  TextTable table{{"PRM/device", "context bytes", "relocate",
                   "reload (CompactFlash)", "reload (Flash)", "reload (DDR)"}};
  Json runs = Json::array();
  for (const auto& rec : paperdata::table5()) {
    const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
    const auto plan = find_prr(rec.req, fabric);
    if (!plan) continue;
    const IcapModel icap = default_icap(rec.family);
    const RelocationTime reloc =
        relocation_time(plan->organization, fabric.traits(), icap);
    const ContextCost context =
        context_cost(plan->organization, fabric.traits());
    const DmaIcapController dma{icap};
    const auto reload_s = [&](StorageMedia media) {
      return dma.estimate(plan->bitstream.total_bytes, media).total_s;
    };
    const auto reload_ms = [&](StorageMedia media) {
      return format_fixed(reload_s(media) * 1e3, 3) + " ms";
    };
    table.add_row({std::string{rec.prm} + "/" + std::string{rec.device},
                   std::to_string(context.save_bytes),
                   format_fixed(reloc.total_s * 1e3, 3) + " ms",
                   reload_ms(StorageMedia::kCompactFlash),
                   reload_ms(StorageMedia::kFlash),
                   reload_ms(StorageMedia::kDdrSdram)});
    Json run = Json::object();
    run.set("prm", std::string{rec.prm})
        .set("device", std::string{rec.device})
        .set("context_save_bytes", context.save_bytes)
        .set("relocate_s", reloc.total_s)
        .set("reload_compactflash_s", reload_s(StorageMedia::kCompactFlash))
        .set("reload_flash_s", reload_s(StorageMedia::kFlash))
        .set("reload_ddr_s", reload_s(StorageMedia::kDdrSdram));
    runs.push_back(std::move(run));
  }
  bench::print_table(
      "Ablation G: HTR relocation vs reloading the partial bitstream from "
      "storage (relocation wins against CF/flash, loses to DDR)",
      table);

  Json doc = Json::object();
  doc.set("bench", "ablation_relocation").set("runs", std::move(runs));
  const std::string json = doc.dump();
  std::cout << json << '\n';
  if (out_path != "-") {
    std::ofstream out{out_path};
    out << json << '\n';
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
  }
  return 0;
}
