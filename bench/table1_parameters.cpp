// Table I: parameters of the PRR size/organization cost model. The table
// is definitional in the paper; regenerating it here (from the same
// strings the doc comments carry) keeps the "every table" inventory
// complete and gives readers of the bench output a legend for Table V.
#include "bench/bench_util.hpp"

int main() {
  using namespace prcost;
  TextTable table{{"Parameter", "Description"}};
  table.add_row({"LUT_FF_req", "LUT-FF pairs required in PRM"});
  table.add_row({"LUT_req", "Slice LUTs required in PRM"});
  table.add_row({"LUT_CLB", "LUTs per CLB"});
  table.add_row({"FF_CLB", "FFs per CLB"});
  table.add_row({"CLB_req", "CLBs required in PRM"});
  table.add_row({"FF_req", "FFs required in PRM"});
  table.add_row({"W_CLB", "CLB columns in PRR"});
  table.add_row({"H_CLB", "CLB rows in PRR"});
  table.add_row({"CLB_col", "CLBs in a column (per row)"});
  table.add_row({"DSP_req", "DSPs required in PRM"});
  table.add_row({"W_DSP", "DSP columns in PRR"});
  table.add_row({"H_DSP", "DSP rows in PRR"});
  table.add_row({"DSP_col", "DSPs in a column (per row)"});
  table.add_row({"BRAM_req", "BRAMs required in PRM"});
  table.add_row({"W_BRAM", "BRAM columns in PRR"});
  table.add_row({"H_BRAM", "BRAM rows in PRR"});
  table.add_row({"BRAM_col", "BRAMs in a column (per row)"});
  table.add_row({"CLB_avail", "CLBs available in PRR"});
  table.add_row({"FF_avail", "FFs available in PRR"});
  table.add_row({"DSP_avail", "DSPs available in PRR"});
  table.add_row({"BRAM_avail", "BRAMs available in PRR"});
  table.add_row({"H", "Number of rows in the PRR"});
  table.add_row({"W", "Number of columns in the PRR"});
  table.add_row({"PRR_size", "Size of PRR"});
  bench::print_table(
      "Table I: parameters of the PRR size/organization cost model "
      "(implemented by cost/prr_model.hpp)",
      table);
  return 0;
}
