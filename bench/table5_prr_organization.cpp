// Table V: application of the PRR size/organization cost model to the
// FIR / MIPS / SDRAM PRMs on the Virtex-5 LX110T and Virtex-6 LX75T.
//
// Two modes are printed:
//  (a) paper-input mode - the model runs on the synthesis-report values
//      reconstructed from the paper (src/paperdata); the produced
//      H/W/avail/RU rows must reproduce Table V exactly (RU within the
//      paper's +/-1-point rounding).
//  (b) full-flow mode - the model runs on OUR synthesis simulator's
//      reports for regenerated FIR/MIPS/SDRAM netlists; absolute numbers
//      differ (different RTL), the qualitative shape must hold.
#include <optional>

#include "bench/bench_util.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "netlist/generators.hpp"
#include "paperdata/paper_dataset.hpp"
#include "synth/synthesizer.hpp"

namespace {

using namespace prcost;

void add_column(TextTable& table, std::vector<std::vector<std::string>>& cols,
                const std::string& header, const PrmRequirements& req,
                const Fabric& fabric) {
  std::vector<std::string> cells;
  const auto plan = find_prr(req, fabric);
  const FamilyTraits& t = fabric.traits();
  cells.push_back(std::to_string(req.lut_ff_pairs));
  cells.push_back(std::to_string(req.dsps));
  cells.push_back(std::to_string(req.brams));
  cells.push_back(std::to_string(req.luts));
  cells.push_back(std::to_string(req.ffs));
  cells.push_back(std::to_string(clb_req(req, t)));
  if (plan) {
    const auto& o = plan->organization;
    cells.push_back(std::to_string(o.h));
    cells.push_back(std::to_string(o.columns.clb_cols));
    cells.push_back(std::to_string(o.columns.dsp_cols > 0 ? o.h : 0));
    cells.push_back(std::to_string(o.columns.dsp_cols));
    cells.push_back(std::to_string(o.columns.bram_cols > 0 ? o.h : 0));
    cells.push_back(std::to_string(o.columns.bram_cols));
    cells.push_back(std::to_string(plan->available.clbs));
    cells.push_back(std::to_string(plan->available.ffs));
    cells.push_back(std::to_string(plan->available.luts));
    cells.push_back(std::to_string(plan->available.dsps));
    cells.push_back(std::to_string(plan->available.brams));
    cells.push_back(bench::pct(plan->ru.clb));
    cells.push_back(bench::pct(plan->ru.ff));
    cells.push_back(bench::pct(plan->ru.lut));
    cells.push_back(bench::pct(plan->ru.dsp));
    cells.push_back(bench::pct(plan->ru.bram));
  } else {
    cells.insert(cells.end(), 16, "-");
  }
  (void)table;
  cols.push_back(std::move(cells));
  cols.back().insert(cols.back().begin(), header);
}

void print_mode(const std::string& title,
                const std::vector<std::pair<std::string, PrmRequirements>>&
                    v5_reqs,
                const std::vector<std::pair<std::string, PrmRequirements>>&
                    v6_reqs) {
  static const char* kRows[] = {
      "LUT_FF_req", "DSP_req",   "BRAM_req",  "LUT_req",    "FF_req",
      "CLB_req",    "H_CLB",     "W_CLB",     "H_DSP",      "W_DSP",
      "H_BRAM",     "W_BRAM",    "CLB_avail", "FF_avail",   "LUT_avail",
      "DSP_avail",  "BRAM_avail", "RU_CLB",   "RU_FF",      "RU_LUT",
      "RU_DSP",     "RU_BRAM"};
  std::vector<std::string> header{"Parameter"};
  std::vector<std::vector<std::string>> cols;
  TextTable dummy{{}};
  const Fabric& lx110t = DeviceDb::instance().get("xc5vlx110t").fabric;
  const Fabric& lx75t = DeviceDb::instance().get("xc6vlx75t").fabric;
  for (const auto& [name, req] : v5_reqs) {
    header.push_back("V5 " + name);
    add_column(dummy, cols, "V5 " + name, req, lx110t);
  }
  for (const auto& [name, req] : v6_reqs) {
    header.push_back("V6 " + name);
    add_column(dummy, cols, "V6 " + name, req, lx75t);
  }
  TextTable table{header};
  for (std::size_t r = 0; r < std::size(kRows); ++r) {
    std::vector<std::string> row{kRows[r]};
    for (const auto& col : cols) row.push_back(col[r + 1]);
    table.add_row(std::move(row));
  }
  bench::print_table(title, table);
}

}  // namespace

int main() {
  // ---- (a) paper-input mode --------------------------------------------
  std::vector<std::pair<std::string, PrmRequirements>> v5, v6;
  for (const auto& rec : paperdata::table5()) {
    (rec.family == Family::kVirtex5 ? v5 : v6)
        .emplace_back(std::string{rec.prm}, rec.req);
  }
  print_mode(
      "Table V (paper-input mode): model applied to the paper's synthesis "
      "reports - reproduces the published organizations exactly",
      v5, v6);

  // ---- (b) full-flow mode -----------------------------------------------
  const auto synth_req = [](Netlist nl, Family family) {
    const SynthesisResult result =
        synthesize(std::move(nl), SynthOptions{family});
    return PrmRequirements::from_report(result.report);
  };
  std::vector<std::pair<std::string, PrmRequirements>> v5f, v6f;
  for (const Family family : {Family::kVirtex5, Family::kVirtex6}) {
    auto& bucket = family == Family::kVirtex5 ? v5f : v6f;
    bucket.emplace_back("FIR", synth_req(make_fir(), family));
    bucket.emplace_back("MIPS", synth_req(make_mips5(), family));
    bucket.emplace_back("SDRAM", synth_req(make_sdram_ctrl(), family));
  }
  print_mode(
      "Table V (full-flow mode): model applied to OUR synthesis simulator's "
      "reports for regenerated PRMs - same shape, different RTL",
      v5f, v6f);
  return 0;
}
