// prcost command-line tool: thin adapters over the library Engine API
// (src/api). Each subcommand maps flags onto a typed request, calls the
// Engine, and renders the typed response; the same requests drive the
// JSONL `batch` front-end and any embedding consumer, so no evaluation
// logic lives here.
//
//   prcost devices
//   prcost synth <prm> [--family v5] [-o report.srp]
//   prcost plan <prm> --device xc5vlx110t [--report file.srp]
//                [--objective area|height|bitstream] [--shaped]
//   prcost bitstream <prm> --device xc5vlx110t [-o out.bit]
//   prcost explore --device xc6vlx240t <prm> <prm> ...
//   prcost batch [requests.jsonl]
//
// Exit codes: 0 success, 1 runtime failure (unknown device/PRM, missing
// file, infeasible PRR...), 2 usage error (only usage errors print the
// usage banner).
//
// PRMs: fir mips sdram aes crc32 uart matmul
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/batch.hpp"
#include "api/engine.hpp"
#include "api/requests.hpp"
#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "netlist/serialize.hpp"
#include "obs/obs.hpp"
#include "sched/generators.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace prcost;
using api::Engine;

void print_usage(std::ostream& out) {
  out <<
      "usage:\n"
      "  prcost devices\n"
      "  prcost synth <prm> [--family v4|v5|v6|s7|s6] [-o report.srp]\n"
      "  prcost plan <prm> --device <name> [--report file.srp]\n"
      "              [--objective area|height|bitstream] [--shaped]\n"
      "  prcost bitstream <prm> --device <name> [-o out.bit]\n"
      "  prcost explore --device <name> <prm> <prm> [...] [--workers N]\n"
      "              [--cross-check]  (generate + verify Pareto-front\n"
      "               bitstreams against the Eq. 18 model)\n"
      "  prcost netlist <prm> [-o design.net]\n"
      "  prcost rank <prm> <prm> [...] [--workers N]\n"
      "  prcost faults <prm> [...] --device <name> [--prrs N] [--tasks N]\n"
      "              [--seed N] [--media cf|flash|ddr|bram]\n"
      "              [--recovery drop|reschedule] [--strict]\n"
      "              (multitask simulation under fault injection; set the\n"
      "               rate with the global --fault-rate flag)\n"
      "  prcost optimize --device <name> (<prm> [...] | --prm-count N)\n"
      "              [--groups N] [--seed N] [--rounds N] [--proposals N]\n"
      "              [--media cf|flash|ddr|bram] [--workers N]\n"
      "              (joint partition-schedule-floorplan optimization:\n"
      "               greedy baseline vs simulated annealing over\n"
      "               swap/relocate/resize/compact moves, costed through\n"
      "               the bitstream + reconfiguration + fault models)\n"
      "  prcost schedule <prm> [...] --device <name> [--slots N]\n"
      "              [--policy fcfs|priority|edf]\n"
      "              [--workload poisson|bursty | --trace FILE]\n"
      "              [--tasks N] [--seed N] [--deadline-factor X]\n"
      "              [--media cf|flash|ddr|bram] [--warm-media ...]\n"
      "              [--prefetch-rate HZ] [--cpu-workers N]\n"
      "              [--cpu-slowdown X] [--dump-trace FILE]\n"
      "              (online event-driven scheduler over floorplanned PRR\n"
      "               slots: reconfiguration-aware placement priced through\n"
      "               the controller + fault-retry models, arrival-rate-\n"
      "               triggered bitstream prefetch, CPU fallback for\n"
      "               deadline-infeasible placements)\n"
      "  prcost batch [requests.jsonl] [--workers N] [-o responses.jsonl]\n"
      "              (JSONL requests from the file or stdin, streamed in\n"
      "               bounded windows; exactly one JSON response per line -\n"
      "               see README \"Batch mode\")\n"
      "  prcost serve (--socket PATH | --port N [--host H]) [--max-queue N]\n"
      "              [--max-inflight N] [--dispatch-batch N] [--workers N]\n"
      "              [--drain-grace-ms N]\n"
      "              (warm multi-tenant daemon: one shared engine, JSONL\n"
      "               over unix/TCP sockets with the batch wire contract\n"
      "               plus \"ping\" and \"metrics\" ops; bounded admission\n"
      "               queue sheds with the \"overloaded\" code; SIGTERM\n"
      "               drains in-flight work, flushes --cache-dir snapshots\n"
      "               and exits 0 - see README \"Serve mode\")\n"
      "  prcost client (--socket PATH | --port N [--host H])\n"
      "              [requests.jsonl]\n"
      "              (send JSONL requests from the file or stdin to a\n"
      "               daemon; one response line per request on stdout)\n"
      "global flags (any command):\n"
      "  --fault-rate P      probability a bitstream transfer is corrupted\n"
      "                      (0..1, default 0 = faults off)\n"
      "  --stall-rate P      probability of a storage-media stall (0..1)\n"
      "  --fault-seed N      fault injector seed (runs are reproducible)\n"
      "  --max-retries N     verified-transfer retry budget (default 3)\n"
      "  --stats             attach request-scoped telemetry to every\n"
      "                      response (wall time, per-phase times, cache\n"
      "                      hits/misses, retries, allocations); batch\n"
      "                      lines gain a result.stats block\n"
      "  --trace-out FILE    record spans, write Chrome trace-event JSON\n"
      "                      (open at https://ui.perfetto.dev)\n"
      "  --trace-folded FILE record spans, write flamegraph folded stacks\n"
      "  --metrics-out FILE  write the metrics registry as JSON\n"
      "                      (FILE '-' sends any of these to stderr,\n"
      "                       keeping stdout results intact)\n"
      "  --log-level LVL     debug|info|warn|error|off (default warn)\n"
      "  --no-plan-cache     disable PRR plan memoization (escape hatch;\n"
      "                      results are identical either way)\n"
      "  --no-bitstream-cache  disable generated-bitstream memoization\n"
      "                      (escape hatch; output is byte-identical)\n"
      "  --cache-dir DIR     persist the plan/bitstream caches as warm-\n"
      "                      start snapshots in DIR (loaded on startup,\n"
      "                      saved on success; missing or corrupt\n"
      "                      snapshots cold-start cleanly and output is\n"
      "                      byte-identical either way)\n"
      "  --workers N         parallel workers for explore/rank/batch\n"
      "                      (0 = auto)\n"
      "prms: fir mips sdram aes crc32 uart matmul sobel fft\n"
      "netlist files: prcost netlist <prm> -o design.net; "
      "then --netlist design.net\n"
      "exit codes: 0 ok, 1 runtime failure, 2 usage error\n";
}

/// Tiny flag parser: positional args plus --key value / -o value pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  bool has(const std::string& key) const { return flags.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0 || token == "-o") {
      const std::string key = token.rfind("--", 0) == 0 ? token.substr(2)
                                                        : "out";
      if (key == "shaped" || key == "no-plan-cache" ||
          key == "no-bitstream-cache" || key == "cross-check" ||
          key == "strict" || key == "stats") {  // booleans
        args.flags[key] = "1";
        continue;
      }
      if (i + 1 >= argc) throw UsageError{"flag " + token + " needs a value"};
      args.flags[key] = argv[++i];
    } else {
      args.positional.push_back(std::move(token));
    }
  }
  return args;
}

/// Parse the --workers flag (0 = auto). Malformed values surface the
/// actual parse error, not a generic usage message.
std::size_t workers_flag(const Args& args) {
  const std::string value = args.get("workers", "0");
  try {
    return narrow<std::size_t>(parse_u64(value));
  } catch (const std::exception& error) {
    throw UsageError{"--workers: " + std::string{error.what()}};
  }
}

/// Parse an unsigned flag; malformed values surface the parse error under
/// the flag's own name.
u64 u64_flag(const Args& args, const std::string& key, u64 fallback) {
  if (!args.has(key)) return fallback;
  try {
    return parse_u64(args.get(key, ""));
  } catch (const std::exception& error) {
    throw UsageError{"--" + key + ": " + std::string{error.what()}};
  }
}

/// Parse a floating-point flag the same way.
double double_flag(const Args& args, const std::string& key, double fallback) {
  if (!args.has(key)) return fallback;
  try {
    return parse_double(args.get(key, ""));
  } catch (const std::exception& error) {
    throw UsageError{"--" + key + ": " + std::string{error.what()}};
  }
}

/// Map the shared PRM-source flags onto a typed PrmSource (the Engine
/// validates that exactly one is set).
api::PrmSource prm_source(const Args& args) {
  api::PrmSource source;
  if (args.has("netlist")) {
    source.netlist_path = args.get("netlist", "");
  } else if (args.has("report")) {
    source.report_path = args.get("report", "");
  } else if (!args.positional.empty()) {
    source.prm = args.positional[0];
  }
  return source;
}

/// Render the optional --stats block of a response on stdout (after the
/// command's own output; no-op when stats collection is off).
void print_request_stats(const std::optional<obs::RequestStatsSummary>& s) {
  if (!s) return;
  const auto ms = [](u64 ns) {
    return format_fixed(static_cast<double>(ns) / 1e6, 3);
  };
  std::cout << "\n=== request stats ===\n"
            << "wall " << ms(s->wall_ns) << " ms, plan cache "
            << s->plan_cache_hits << "/" << s->plan_cache_misses
            << " hit/miss, bitstream cache " << s->bitstream_cache_hits << "/"
            << s->bitstream_cache_misses << " hit/miss, retries "
            << s->retries << ", allocations " << s->allocations << '\n';
  if (s->phases.empty()) return;
  TextTable table{{"phase", "count", "self (ms)", "total (ms)", "max (ms)"}};
  for (const obs::RequestPhase& phase : s->phases) {
    table.add_row({phase.name, std::to_string(phase.count), ms(phase.self_ns),
                   ms(phase.total_ns), ms(phase.max_ns)});
  }
  std::cout << table.to_ascii();
}

int cmd_devices(const Engine& engine) {
  TextTable table{{"device", "family", "rows", "CLB cols", "DSP cols",
                   "BRAM cols", "CLBs", "DSPs", "BRAM36s"}};
  const api::DevicesResponse response = engine.list_devices();
  for (const api::DeviceSummary& dev : response.devices) {
    table.add_row({dev.name, dev.family, std::to_string(dev.rows),
                   std::to_string(dev.clb_cols), std::to_string(dev.dsp_cols),
                   std::to_string(dev.bram_cols), std::to_string(dev.clbs),
                   std::to_string(dev.dsps), std::to_string(dev.bram36s)});
  }
  std::cout << table.to_ascii();
  print_request_stats(response.stats);
  return 0;
}

int cmd_synth(const Engine& engine, const Args& args) {
  if (args.positional.empty()) throw UsageError{"synth needs a PRM"};
  api::SynthRequest request;
  request.source.prm = args.positional[0];
  request.family = parse_family(args.get("family", "v5"));
  const api::SynthResponse response = engine.synth(request);
  const std::string text = report_to_text(response.report);
  if (args.has("out")) {
    std::ofstream out{args.get("out", "")};
    out << text;
    std::cout << "wrote " << args.get("out", "") << '\n';
  } else {
    std::cout << text;
  }
  print_request_stats(response.stats);
  return 0;
}

int cmd_plan(const Engine& engine, const Args& args) {
  if (!args.has("device")) throw UsageError{"plan needs --device"};
  api::PlanRequest request;
  request.device = args.get("device", "");
  request.source = prm_source(args);
  request.objective = api::parse_objective(args.get("objective", "area"));
  request.shaped = args.has("shaped");

  api::PlanResponse response;
  try {
    response = engine.plan(request);
  } catch (const InfeasibleError& error) {
    std::cout << error.what() << '\n';
    return 1;
  }
  const PrrPlan& plan = response.plan;

  TextTable table{{"quantity", "value"}};
  table.add_row({"H x W", std::to_string(plan.organization.h) + " x " +
                              std::to_string(plan.organization.width())});
  table.add_row({"W_CLB / W_DSP / W_BRAM",
                 std::to_string(plan.organization.columns.clb_cols) + " / " +
                     std::to_string(plan.organization.columns.dsp_cols) +
                     " / " +
                     std::to_string(plan.organization.columns.bram_cols)});
  table.add_row({"PRR size (cells)", std::to_string(plan.organization.size())});
  table.add_row({"window first column", std::to_string(plan.window.first_col)});
  table.add_row({"RU CLB/FF/LUT/DSP/BRAM",
                 format_fixed(plan.ru.clb, 0) + "% / " +
                     format_fixed(plan.ru.ff, 0) + "% / " +
                     format_fixed(plan.ru.lut, 0) + "% / " +
                     format_fixed(plan.ru.dsp, 0) + "% / " +
                     format_fixed(plan.ru.bram, 0) + "%"});
  table.add_row({"partial bitstream",
                 std::to_string(plan.bitstream.total_bytes) + " bytes"});

  if (response.par) {
    const api::ParCrossCheck& par = *response.par;
    if (par.routed) {
      table.add_row({"PAR placed cells", std::to_string(par.placed_cells)});
      table.add_row({"PAR HPWL (initial -> final)",
                     std::to_string(par.hpwl_initial) + " -> " +
                         std::to_string(par.hpwl_final)});
      table.add_row({"PAR critical path",
                     format_fixed(par.critical_path_ns, 2) + " ns"});
    } else {
      table.add_row({"PAR", "failed: " + par.failure_reason});
    }
  }
  table.add_row({"generated bitstream",
                 std::to_string(*response.generated_bytes) + " bytes (" +
                     (response.generated_matches_model()
                          ? "matches model"
                          : "MODEL MISMATCH") +
                     ")"});
  std::cout << table.to_ascii();

  if (response.shaped) {
    if (response.shaped->beats_rectangle) {
      std::cout << "\nL-shaped alternative: " << response.shaped->cells
                << " cells, " << response.shaped->bitstream_bytes
                << " bytes (saves " << response.shaped->cells_saved
                << " cells)\n";
    } else {
      std::cout << "\nno L-shaped alternative beats the rectangle\n";
    }
  }
  print_request_stats(response.stats);
  return 0;
}

int cmd_bitstream(const Engine& engine, const Args& args) {
  if (!args.has("device")) throw UsageError{"bitstream needs --device"};
  api::BitstreamRequest request;
  request.device = args.get("device", "");
  request.source = prm_source(args);

  api::BitstreamResponse response;
  try {
    response = engine.bitstream(request);
  } catch (const InfeasibleError& error) {
    std::cout << error.what() << '\n';
    return 1;
  }
  std::cout << disassemble(*response.words, response.family);
  if (args.has("out")) {
    const auto bytes = to_bytes(*response.words, response.family);
    std::ofstream out{args.get("out", ""), std::ios::binary};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::cout << "wrote " << bytes.size() << " bytes to "
              << args.get("out", "") << '\n';
  }
  print_request_stats(response.stats);
  return 0;
}

int cmd_rank(const Engine& engine, const Args& args) {
  if (args.positional.empty()) throw UsageError{"rank needs at least one PRM"};
  api::RankRequest request;
  request.prms = args.positional;
  request.workers = workers_flag(args);
  const api::RankResponse response = engine.rank(request);

  TextTable table{{"rank", "device", "feasible", "fabric used",
                   "bitstream total", "makespan (ms)"}};
  int rank = 1;
  for (const DeviceChoice& choice : response.choices) {
    table.add_row({std::to_string(rank++), choice.device,
                   choice.feasible ? "yes" : choice.reason,
                   choice.feasible
                       ? format_fixed(choice.fabric_fraction * 100, 1) + "%"
                       : "-",
                   choice.feasible
                       ? format_bytes(static_cast<double>(
                             choice.total_bitstream_bytes))
                       : "-",
                   choice.feasible
                       ? format_fixed(choice.makespan_s * 1e3, 2)
                       : "-"});
  }
  std::cout << table.to_ascii();
  print_request_stats(response.stats);
  return 0;
}

int cmd_faults(const Engine& engine, const Args& args) {
  if (!args.has("device")) throw UsageError{"faults needs --device"};
  if (args.positional.empty()) {
    throw UsageError{"faults needs at least one PRM"};
  }
  api::FaultsRequest request;
  request.device = args.get("device", "");
  request.prms = args.positional;
  request.prr_count = narrow<u32>(u64_flag(args, "prrs", 2));
  request.tasks = narrow<u32>(u64_flag(args, "tasks", 100));
  request.seed = u64_flag(args, "seed", 42);
  request.media = args.get("media", "ddr");
  request.recovery = args.get("recovery", "drop");
  request.strict = args.has("strict");
  // The fault environment itself (--fault-rate, --fault-seed,
  // --max-retries) is global and already folded into the engine defaults;
  // the request optionals stay unset so those defaults apply.
  const api::FaultsResponse response = engine.faults(request);

  TextTable table{{"quantity", "value"}};
  table.add_row({"fault rate", format_fixed(response.fault_rate, 4)});
  table.add_row({"fault seed", std::to_string(response.fault_seed)});
  table.add_row({"max retries", std::to_string(response.max_retries)});
  table.add_row({"makespan", format_fixed(response.makespan_s * 1e3, 2) +
                                 " ms"});
  table.add_row({"reconfigurations", std::to_string(response.reconfig_count)});
  table.add_row({"effective reconfig time",
                 format_fixed(response.effective_reconfig_s * 1e3, 3) +
                     " ms"});
  table.add_row({"retry attempts", std::to_string(response.retry_attempts)});
  table.add_row({"retry backoff",
                 format_fixed(response.total_retry_backoff_s * 1e3, 3) +
                     " ms"});
  table.add_row({"wasted ICAP time",
                 format_fixed(response.total_fault_wasted_s * 1e3, 3) +
                     " ms"});
  table.add_row({"injected faults / stalls",
                 std::to_string(response.injected_faults) + " / " +
                     std::to_string(response.injected_stalls)});
  table.add_row({"failed reconfigs",
                 std::to_string(response.failed_reconfigs)});
  table.add_row({"rescheduled tasks",
                 std::to_string(response.rescheduled_tasks)});
  table.add_row({"dropped tasks", std::to_string(response.dropped_tasks)});
  table.add_row({"drop penalty",
                 format_fixed(response.total_penalty_s * 1e3, 3) + " ms"});
  std::cout << table.to_ascii();
  print_request_stats(response.stats);
  return 0;
}

int cmd_optimize(const Engine& engine, const Args& args) {
  if (!args.has("device")) throw UsageError{"optimize needs --device"};
  api::OptimizeRequest request;
  request.device = args.get("device", "");
  request.prms = args.positional;
  request.prm_count = narrow<u32>(u64_flag(args, "prm-count", 0));
  if (request.prms.empty() && request.prm_count == 0) {
    throw UsageError{"optimize needs PRMs or --prm-count N"};
  }
  request.groups = narrow<u32>(u64_flag(args, "groups", 0));
  request.seed = u64_flag(args, "seed", 1);
  request.rounds = narrow<u32>(u64_flag(args, "rounds", 48));
  request.proposals_per_round = narrow<u32>(u64_flag(args, "proposals", 8));
  request.media = args.get("media", "ddr");
  request.workers = workers_flag(args);
  const api::OptimizeResponse response = engine.optimize(request);

  const auto pct = [](double x) { return format_fixed(x * 100.0, 1) + "%"; };
  TextTable table{{"quantity", "greedy", "annealed"}};
  table.add_row({"placed PRRs",
                 std::to_string(response.greedy_placed_groups) + " / " +
                     std::to_string(response.group_count),
                 std::to_string(response.anneal_placed_groups) + " / " +
                     std::to_string(response.group_count)});
  table.add_row({"rejected PRMs",
                 std::to_string(response.greedy_rejected_prms),
                 std::to_string(response.anneal_rejected_prms)});
  table.add_row({"rejection rate", pct(response.greedy_rejection_rate),
                 pct(response.anneal_rejection_rate)});
  table.add_row({"makespan",
                 format_fixed(response.greedy_makespan_s * 1e3, 2) + " ms",
                 format_fixed(response.anneal_makespan_s * 1e3, 2) + " ms"});
  table.add_row({"fragmentation", pct(response.greedy_fragmentation),
                 pct(response.anneal_fragmentation)});
  table.add_row({"cost", format_fixed(response.greedy_cost, 3),
                 format_fixed(response.anneal_cost, 3)});
  std::cout << table.to_ascii();
  std::cout << "fleet: " << response.prm_count << " PRMs in "
            << response.group_count << " shared PRRs (seed " << response.seed
            << ")\n"
            << "moves: " << response.accepted << " accepted of "
            << response.proposals << " proposed (swap "
            << response.accepted_swap << ", relocate "
            << response.accepted_relocate << ", resize "
            << response.accepted_resize << ", compact "
            << response.accepted_compact << "), relocation ICAP time "
            << format_fixed(response.anneal_relocation_s * 1e3, 3) << " ms\n"
            << "cost re-evaluation: "
            << (response.cost_verified ? "matches" : "MISMATCH")
            << ", bitstream model: "
            << (response.bitstream_verified ? "matches generated"
                                            : "MISMATCH")
            << '\n';
  print_request_stats(response.stats);
  return response.cost_verified && response.bitstream_verified ? 0 : 1;
}

int cmd_schedule(const Engine& engine, const Args& args) {
  if (!args.has("device")) throw UsageError{"schedule needs --device"};
  if (args.positional.empty()) {
    throw UsageError{"schedule needs at least one PRM"};
  }
  api::ScheduleRequest request;
  request.device = args.get("device", "");
  request.prms = args.positional;
  request.slots = narrow<u32>(u64_flag(args, "slots", 2));
  request.policy = args.get("policy", "fcfs");
  request.workload = args.get("workload", "poisson");
  if (args.has("trace")) {
    const std::string path = args.get("trace", "");
    std::ifstream in{path};
    if (!in) throw IoError{"cannot open trace file '" + path + "'"};
    std::stringstream buffer;
    buffer << in.rdbuf();
    request.trace = buffer.str();
    request.workload = "trace";
  }
  request.tasks = narrow<u32>(u64_flag(args, "tasks", 100));
  request.seed = u64_flag(args, "seed", 42);
  request.mean_interarrival_s = double_flag(args, "interarrival", 2.0e-3);
  request.mean_exec_s = double_flag(args, "exec", 5.0e-3);
  request.deadline_factor = double_flag(args, "deadline-factor", 0.0);
  request.media = args.get("media", "flash");
  request.warm_media = args.get("warm-media", "ddr");
  request.prefetch_rate_hz = double_flag(args, "prefetch-rate", 0.0);
  request.cpu_workers = narrow<u32>(u64_flag(args, "cpu-workers", 2));
  request.cpu_slowdown = double_flag(args, "cpu-slowdown", 8.0);
  // The fault environment (--fault-rate, --max-retries) is global and
  // already folded into the engine defaults; the optionals stay unset.

  if (args.has("dump-trace")) {
    // Record the arrival stream (before running it) as a replayable JSONL
    // trace: generate the same synthetic workload the run will use.
    sched::ArrivalParams params;
    params.count = request.tasks;
    params.prm_count = narrow<u32>(request.prms.size());
    params.mean_interarrival_s = request.mean_interarrival_s;
    params.mean_exec_s = request.mean_exec_s;
    params.deadline_factor = request.deadline_factor;
    params.seed = request.seed;
    const std::vector<sched::Task> tasks =
        request.workload == "trace"    ? sched::parse_trace(request.trace)
        : request.workload == "bursty" ? sched::make_bursty(params)
                                       : sched::make_poisson(params);
    const std::string path = args.get("dump-trace", "");
    std::ofstream out{path};
    if (!out) throw IoError{"cannot write trace file '" + path + "'"};
    out << sched::dump_trace(tasks);
    std::cout << "wrote " << tasks.size() << " tasks to " << path << '\n';
  }

  const api::ScheduleResponse response = engine.schedule(request);

  TextTable table{{"quantity", "value"}};
  table.add_row({"policy", response.policy});
  table.add_row({"PRR slots", std::to_string(response.slot_count)});
  table.add_row({"tasks", std::to_string(response.task_count)});
  table.add_row({"makespan", format_fixed(response.makespan_s * 1e3, 2) +
                                 " ms"});
  table.add_row({"throughput",
                 format_fixed(response.throughput_per_s, 1) + " tasks/s"});
  table.add_row({"reconfigurations",
                 std::to_string(response.reconfig_count)});
  table.add_row({"slot reuse hits", std::to_string(response.reuse_hits)});
  table.add_row({"reconfig time / task",
                 format_fixed(response.reconfig_seconds_per_task * 1e3, 3) +
                     " ms"});
  table.add_row({"prefetches issued",
                 std::to_string(response.prefetches_issued)});
  table.add_row({"warm (prefetched) reconfigs",
                 std::to_string(response.prefetched_reconfigs)});
  table.add_row({"deadline misses",
                 std::to_string(response.deadline_misses)});
  table.add_row({"CPU fallbacks", std::to_string(response.cpu_fallbacks)});
  table.add_row({"mean wait",
                 format_fixed(response.mean_wait_s * 1e3, 3) + " ms"});
  table.add_row({"mean turnaround",
                 format_fixed(response.mean_turnaround_s * 1e3, 3) + " ms"});
  std::cout << table.to_ascii();
  print_request_stats(response.stats);
  return 0;
}

int cmd_netlist(const Args& args) {
  if (args.positional.empty()) throw UsageError{"netlist needs a PRM"};
  const std::string text =
      netlist_to_text(api::make_builtin_prm(args.positional[0]));
  if (args.has("out")) {
    std::ofstream out{args.get("out", "")};
    out << text;
    std::cout << "wrote " << args.get("out", "") << '\n';
  } else {
    std::cout << text;
  }
  return 0;
}

int cmd_explore(const Engine& engine, const Args& args) {
  if (!args.has("device")) throw UsageError{"explore needs --device"};
  if (args.positional.size() < 2) {
    throw UsageError{"explore needs at least two PRMs"};
  }
  api::ExploreRequest request;
  request.device = args.get("device", "");
  request.prms = args.positional;
  request.workers = workers_flag(args);
  request.cross_check = args.has("cross-check");
  const api::ExploreResponse response = engine.explore(request);

  TextTable table{{"partitioning", "area", "makespan (ms)", "feasible"}};
  for (const DesignPoint& point : response.points) {
    std::string partition;
    for (const auto& group : point.partition) {
      partition += "{";
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (i) partition += ",";
        partition += response.prms[group[i]];
      }
      partition += "}";
    }
    table.add_row({partition, std::to_string(point.total_prr_area),
                   point.feasible ? format_fixed(point.makespan_s * 1e3, 2)
                                  : "-",
                   point.feasible ? "yes" : point.infeasible_reason});
  }
  std::cout << table.to_ascii();
  std::cout << "pareto-optimal: " << response.pareto_count << " of "
            << response.points.size() << " partitionings\n";
  if (response.bitstream_check) {
    std::cout << "bitstream cross-check: "
              << response.bitstream_check->plans_checked
              << " distinct PRR plans generated, "
              << (response.bitstream_check->all_match ? "all match the model"
                                                      : "MODEL MISMATCH")
              << "\n";
    if (!response.bitstream_check->all_match) return 1;
  }
  print_request_stats(response.stats);
  return 0;
}

int cmd_batch(const Engine& engine, const Args& args) {
  api::BatchOptions options;
  options.workers = workers_flag(args);

  std::ifstream file;
  std::istream* in = &std::cin;
  if (!args.positional.empty()) {
    file.open(args.positional[0]);
    if (!file) {
      throw IoError{"cannot open batch file '" + args.positional[0] + "'"};
    }
    in = &file;
  }
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (args.has("out")) {
    out_file.open(args.get("out", ""));
    if (!out_file) {
      throw IoError{"cannot open output file '" + args.get("out", "") + "'"};
    }
    out = &out_file;
  }

  const api::BatchStats stats = api::run_batch(engine, *in, *out, options);
  // Tally on stderr so stdout stays pure JSONL. Per-request failures are
  // structured responses, not process failures: exit 0 either way.
  std::cerr << "batch: " << stats.requests << " requests, " << stats.succeeded
            << " ok, " << stats.failed << " failed\n";
  return 0;
}

int cmd_serve(const Engine& engine, const Args& args) {
  serve::ServerOptions options;
  options.unix_path = args.get("socket", "");
  if (args.has("port")) {
    options.tcp_port = narrow<int>(u64_flag(args, "port", 0));
  }
  options.tcp_host = args.get("host", options.tcp_host);
  options.max_queue =
      narrow<std::size_t>(u64_flag(args, "max-queue", options.max_queue));
  options.max_inflight_per_conn = narrow<std::size_t>(
      u64_flag(args, "max-inflight", options.max_inflight_per_conn));
  options.dispatch_batch = narrow<std::size_t>(
      u64_flag(args, "dispatch-batch", options.dispatch_batch));
  options.workers = workers_flag(args);
  options.drain_grace_ms = narrow<int>(
      u64_flag(args, "drain-grace-ms",
               static_cast<u64>(options.drain_grace_ms)));
  if (options.unix_path.empty() && !args.has("port")) {
    throw UsageError{"serve needs --socket PATH and/or --port N"};
  }

  serve::Server server{engine, options};
  server.start();
  server.install_signal_handlers();
  // Readiness line (flushed): scripts wait for it, and an ephemeral
  // --port 0 bind is only discoverable here.
  std::cout << "serve: listening on";
  if (!options.unix_path.empty()) {
    std::cout << " unix:" << options.unix_path;
  }
  if (server.tcp_port() >= 0) {
    std::cout << " tcp:" << options.tcp_host << ":" << server.tcp_port();
  }
  std::cout << std::endl;

  server.run();  // returns after a graceful drain (stop()/SIGTERM/SIGINT)

  const serve::Server::Counters totals = server.counters();
  std::cout << "serve: " << totals.accepted << " connection(s), "
            << totals.requests << " request(s), " << totals.responses
            << " response(s), " << totals.shed << " shed\n";
  // main() calls engine.save_caches() on rc 0: the drain path flushes
  // warm-start snapshots before the process exits.
  return 0;
}

int cmd_client(const Args& args) {
  serve::Client client;
  if (args.has("socket")) {
    client = serve::Client::connect_unix(args.get("socket", ""));
  } else if (args.has("port")) {
    client = serve::Client::connect_tcp(args.get("host", "127.0.0.1"),
                                        narrow<int>(u64_flag(args, "port", 0)));
  } else {
    throw UsageError{"client needs --socket PATH or --port N"};
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (!args.positional.empty()) {
    file.open(args.positional[0]);
    if (!file) {
      throw IoError{"cannot open requests file '" + args.positional[0] + "'"};
    }
    in = &file;
  }
  std::string line;
  while (std::getline(*in, line)) {
    std::cout << client.request(line) << '\n';
  }
  std::cout.flush();
  return 0;
}

/// Global observability flags: --trace-out, --trace-folded, --metrics-out,
/// --log-level.
struct ObsOptions {
  std::string trace_out;
  std::string trace_folded;
  std::string metrics_out;
  bool traced() const {
    return !trace_out.empty() || !trace_folded.empty();
  }
  bool active() const { return traced() || !metrics_out.empty(); }
};

ObsOptions configure_obs(const Args& args) {
  if (args.has("log-level")) {
    const auto level = parse_log_level(args.get("log-level", ""));
    if (!level) {
      throw UsageError{"unknown log level '" + args.get("log-level", "") +
                       "'"};
    }
    set_log_level(*level);
  }
  ObsOptions options;
  options.trace_out = args.get("trace-out", "");
  options.trace_folded = args.get("trace-folded", "");
  options.metrics_out = args.get("metrics-out", "");
  if (options.traced()) obs::set_tracing(true);
  if (options.active()) obs::set_metrics_enabled(true);
  return options;
}

/// Write one observability artifact to `path`, where "-" means stderr
/// (never stdout: the command's result output must stay intact there).
/// Returns false when a file could not be written.
template <typename Writer>
bool write_obs_artifact(const std::string& path, const char* what,
                        Writer&& writer) {
  if (path == "-") {
    writer(std::cerr);
    return true;
  }
  std::ofstream out{path};
  writer(out);
  if (!out) {
    std::cerr << "error: cannot write " << what << " to '" << path << "'\n";
    return false;
  }
  return true;
}

/// Write the requested artifacts and print the end-of-run summary.
/// Returns nonzero if an output file could not be written.
int finalize_obs(const ObsOptions& options) {
  if (!options.active()) return 0;
  int rc = 0;
  const bool traced = options.traced();
  obs::set_tracing(false);
  if (!options.trace_out.empty() &&
      !write_obs_artifact(options.trace_out, "trace", [](std::ostream& out) {
        obs::write_chrome_trace(out);
        out << '\n';
      })) {
    rc = 1;
  }
  if (!options.trace_folded.empty() &&
      !write_obs_artifact(options.trace_folded, "folded stacks",
                          [](std::ostream& out) {
                            obs::write_folded_stacks(out);
                          })) {
    rc = 1;
  }
  if (!options.metrics_out.empty() &&
      !write_obs_artifact(options.metrics_out, "metrics",
                          [](std::ostream& out) {
                            out << obs::registry().to_json() << '\n';
                          })) {
    rc = 1;
  }

  std::cout << "\n=== metrics ===\n";
  TextTable metrics{{"metric", "value"}};
  for (const auto& snap : obs::registry().snapshot()) {
    switch (snap.kind) {
      case obs::MetricKind::kCounter:
        metrics.add_row({snap.name, std::to_string(snap.count)});
        break;
      case obs::MetricKind::kGauge:
        metrics.add_row({snap.name, format_fixed(snap.value, 3)});
        break;
      case obs::MetricKind::kHistogram:
        metrics.add_row({snap.name, "count=" + std::to_string(snap.count) +
                                        " sum=" + format_fixed(snap.value, 0)});
        break;
    }
  }
  std::cout << metrics.to_ascii();
  if (traced) {
    std::cout << "\n=== span self-time";
    if (!options.trace_out.empty()) {
      std::cout << " (open " << options.trace_out
                << " at https://ui.perfetto.dev)";
    }
    std::cout << " ===\n" << obs::trace_summary_table().to_ascii();
    if (obs::trace_dropped_count() > 0) {
      std::cout << "note: " << obs::trace_dropped_count()
                << " spans dropped (per-thread ring wrapped)\n";
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    const ObsOptions obs_options = configure_obs(args);
    Engine::Options engine_options;
    engine_options.plan_cache = !args.has("no-plan-cache");
    engine_options.bitstream_cache = !args.has("no-bitstream-cache");
    engine_options.fault_rate =
        double_flag(args, "fault-rate", engine_options.fault_rate);
    engine_options.stall_rate =
        double_flag(args, "stall-rate", engine_options.stall_rate);
    engine_options.fault_seed =
        u64_flag(args, "fault-seed", engine_options.fault_seed);
    engine_options.max_retries = narrow<u32>(
        u64_flag(args, "max-retries", engine_options.max_retries));
    engine_options.collect_stats = args.has("stats");
    engine_options.cache_dir = args.get("cache-dir", "");
    const Engine engine{engine_options};
    int rc = 0;
    if (command == "devices") {
      rc = cmd_devices(engine);
    } else if (command == "synth") {
      rc = cmd_synth(engine, args);
    } else if (command == "plan") {
      rc = cmd_plan(engine, args);
    } else if (command == "bitstream") {
      rc = cmd_bitstream(engine, args);
    } else if (command == "explore") {
      rc = cmd_explore(engine, args);
    } else if (command == "netlist") {
      rc = cmd_netlist(args);
    } else if (command == "rank") {
      rc = cmd_rank(engine, args);
    } else if (command == "faults") {
      rc = cmd_faults(engine, args);
    } else if (command == "optimize") {
      rc = cmd_optimize(engine, args);
    } else if (command == "schedule") {
      rc = cmd_schedule(engine, args);
    } else if (command == "batch") {
      rc = cmd_batch(engine, args);
    } else if (command == "serve") {
      rc = cmd_serve(engine, args);
    } else if (command == "client") {
      rc = cmd_client(args);
    } else {
      throw UsageError{"unknown command '" + command + "'"};
    }
    if (rc == 0) engine.save_caches();
    const int obs_rc = finalize_obs(obs_options);
    return rc != 0 ? rc : obs_rc;
  } catch (const UsageError& error) {
    std::cerr << "error: " << error.what() << "\n\n";
    print_usage(std::cerr);
    return 2;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
