// prcost command-line tool: drive the cost models from a shell the way the
// paper's intended user would - synthesize (or load) a report, size a PRR
// on a device, predict the bitstream, explore partitionings.
//
//   prcost devices
//   prcost synth <prm> [--family v5] [-o report.srp]
//   prcost plan <prm> --device xc5vlx110t [--report file.srp]
//                [--objective area|height|bitstream] [--shaped]
//   prcost bitstream <prm> --device xc5vlx110t [-o out.bit]
//   prcost explore --device xc6vlx240t <prm> <prm> ...
//
// PRMs: fir mips sdram aes crc32 uart matmul
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "cost/plan_cache.hpp"
#include "cost/shaped_prr.hpp"
#include "device/device_db.hpp"
#include "dse/device_select.hpp"
#include "dse/explorer.hpp"
#include "netlist/generators.hpp"
#include "netlist/serialize.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"
#include "synth/synthesizer.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace prcost;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  prcost devices\n"
      "  prcost synth <prm> [--family v4|v5|v6|s7|s6] [-o report.srp]\n"
      "  prcost plan <prm> --device <name> [--report file.srp]\n"
      "              [--objective area|height|bitstream] [--shaped]\n"
      "  prcost bitstream <prm> --device <name> [-o out.bit]\n"
      "  prcost explore --device <name> <prm> <prm> [...] [--workers N]\n"
      "  prcost netlist <prm> [-o design.net]\n"
      "  prcost rank <prm> <prm> [...] [--workers N]\n"
      "global flags (any command):\n"
      "  --trace-out FILE    record spans, write Chrome trace-event JSON\n"
      "                      (open at https://ui.perfetto.dev)\n"
      "  --metrics-out FILE  write the metrics registry as JSON\n"
      "  --log-level LVL     debug|info|warn|error|off (default warn)\n"
      "  --no-plan-cache     disable PRR plan memoization (escape hatch;\n"
      "                      results are identical either way)\n"
      "  --workers N         parallel workers for explore/rank (0 = auto)\n"
      "prms: fir mips sdram aes crc32 uart matmul sobel fft\n"
      "netlist files: prcost netlist <prm> -o design.net; then --netlist design.net\n";
  std::exit(2);
}

Netlist make_prm(const std::string& name) {
  if (name == "fir") return make_fir();
  if (name == "mips") return make_mips5();
  if (name == "sdram") return make_sdram_ctrl();
  if (name == "aes") return make_aes_round();
  if (name == "crc32") return make_crc32();
  if (name == "uart") return make_uart();
  if (name == "matmul") return make_matmul();
  if (name == "sobel") return make_sobel();
  if (name == "fft") return make_fft_stage();
  usage("unknown PRM '" + name + "'");
}

/// Tiny flag parser: positional args plus --key value / -o value pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  bool has(const std::string& key) const { return flags.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0 || token == "-o") {
      const std::string key = token.rfind("--", 0) == 0 ? token.substr(2)
                                                        : "out";
      if (key == "shaped" || key == "no-plan-cache") {  // boolean flags
        args.flags[key] = "1";
        continue;
      }
      if (i + 1 >= argc) usage("flag " + token + " needs a value");
      args.flags[key] = argv[++i];
    } else {
      args.positional.push_back(std::move(token));
    }
  }
  return args;
}

int cmd_devices() {
  TextTable table{{"device", "family", "rows", "CLB cols", "DSP cols",
                   "BRAM cols", "CLBs", "DSPs", "BRAM36s"}};
  for (const Device& dev : DeviceDb::instance().all()) {
    table.add_row({dev.name, std::string{family_name(dev.fabric.family())},
                   std::to_string(dev.fabric.rows()),
                   std::to_string(dev.fabric.column_count(ColumnType::kClb)),
                   std::to_string(dev.fabric.column_count(ColumnType::kDsp)),
                   std::to_string(dev.fabric.column_count(ColumnType::kBram)),
                   std::to_string(dev.fabric.total_resources(ColumnType::kClb)),
                   std::to_string(dev.fabric.total_resources(ColumnType::kDsp)),
                   std::to_string(
                       dev.fabric.total_resources(ColumnType::kBram))});
  }
  std::cout << table.to_ascii();
  return 0;
}

int cmd_synth(const Args& args) {
  if (args.positional.empty()) usage("synth needs a PRM");
  const Family family = parse_family(args.get("family", "v5"));
  const SynthesisResult result =
      synthesize(make_prm(args.positional[0]), SynthOptions{family});
  const std::string text = report_to_text(result.report);
  if (args.has("out")) {
    std::ofstream out{args.get("out", "")};
    out << text;
    std::cout << "wrote " << args.get("out", "") << '\n';
  } else {
    std::cout << text;
  }
  return 0;
}

/// Parse the --workers flag (0 = auto) or exit with usage on junk.
std::size_t workers_flag(const Args& args) {
  const std::string value = args.get("workers", "0");
  try {
    return std::stoul(value);
  } catch (const std::exception&) {
    usage("--workers needs a non-negative integer, got '" + value + "'");
  }
}

Netlist load_netlist_file(const std::string& path_name) {
  std::ifstream in{path_name};
  if (!in) usage("cannot open netlist file");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return netlist_from_text(buffer.str());
}

/// Model input plus, when we synthesized it ourselves, the mapped netlist
/// (used by `plan` to run the PAR cross-check).
struct PlanInput {
  PrmRequirements req;
  std::optional<SynthesisResult> synth;
};

PlanInput plan_input_for(const Args& args) {
  if (args.has("netlist")) {
    const Device& device = DeviceDb::instance().get(args.get("device", ""));
    SynthesisResult result = synthesize(
        load_netlist_file(args.get("netlist", "")),
        SynthOptions{device.fabric.family()});
    PrmRequirements req = PrmRequirements::from_report(result.report);
    return PlanInput{req, std::move(result)};
  }
  if (args.has("report")) {
    std::ifstream in{args.get("report", "")};
    if (!in) usage("cannot open report file");
    std::stringstream buffer;
    buffer << in.rdbuf();
    return PlanInput{
        PrmRequirements::from_report(parse_report(buffer.str())),
        std::nullopt};
  }
  if (args.positional.empty()) usage("need a PRM or --report file");
  const Device& device = DeviceDb::instance().get(args.get("device", ""));
  SynthesisResult result = synthesize(
      make_prm(args.positional[0]), SynthOptions{device.fabric.family()});
  PrmRequirements req = PrmRequirements::from_report(result.report);
  return PlanInput{req, std::move(result)};
}

PrmRequirements requirements_for(const Args& args) {
  return plan_input_for(args).req;
}

int cmd_plan(const Args& args) {
  if (!args.has("device")) usage("plan needs --device");
  const Device& device = DeviceDb::instance().get(args.get("device", ""));
  PlanInput input = plan_input_for(args);
  const PrmRequirements& req = input.req;

  SearchOptions options;
  const std::string objective = args.get("objective", "area");
  if (objective == "area") {
    options.objective = SearchObjective::kMinArea;
  } else if (objective == "height") {
    options.objective = SearchObjective::kFirstFeasible;
  } else if (objective == "bitstream") {
    options.objective = SearchObjective::kMinBitstream;
  } else {
    usage("unknown objective '" + objective + "'");
  }

  const auto plan = find_prr(req, device.fabric, options);
  if (!plan) {
    std::cout << "no feasible PRR on " << device.name << '\n';
    return 1;
  }
  TextTable table{{"quantity", "value"}};
  table.add_row({"H x W", std::to_string(plan->organization.h) + " x " +
                              std::to_string(plan->organization.width())});
  table.add_row({"W_CLB / W_DSP / W_BRAM",
                 std::to_string(plan->organization.columns.clb_cols) + " / " +
                     std::to_string(plan->organization.columns.dsp_cols) +
                     " / " +
                     std::to_string(plan->organization.columns.bram_cols)});
  table.add_row({"PRR size (cells)", std::to_string(plan->organization.size())});
  table.add_row({"window first column", std::to_string(plan->window.first_col)});
  table.add_row({"RU CLB/FF/LUT/DSP/BRAM",
                 format_fixed(plan->ru.clb, 0) + "% / " +
                     format_fixed(plan->ru.ff, 0) + "% / " +
                     format_fixed(plan->ru.lut, 0) + "% / " +
                     format_fixed(plan->ru.dsp, 0) + "% / " +
                     format_fixed(plan->ru.bram, 0) + "%"});
  table.add_row({"partial bitstream",
                 std::to_string(plan->bitstream.total_bytes) + " bytes"});

  // Full-flow cross-checks: place & route into the chosen PRR (when the
  // netlist came from our own synthesis) and a generated bitstream whose
  // byte size must match the model prediction.
  if (input.synth) {
    const ParResult par = place_and_route(std::move(input.synth->netlist),
                                          *plan, device.fabric, ParOptions{});
    if (par.routed) {
      table.add_row(
          {"PAR placed cells", std::to_string(par.placement.placed_cells)});
      table.add_row({"PAR HPWL (initial -> final)",
                     std::to_string(par.placement.hpwl_initial) + " -> " +
                         std::to_string(par.placement.hpwl_final)});
      table.add_row({"PAR critical path",
                     format_fixed(par.placement.critical_path_ns, 2) + " ns"});
    } else {
      table.add_row({"PAR", "failed: " + par.failure_reason});
    }
  }
  const auto words = generate_bitstream(*plan, device.fabric.family());
  const u64 generated_bytes =
      static_cast<u64>(words.size()) * device.fabric.traits().bytes_word;
  table.add_row({"generated bitstream",
                 std::to_string(generated_bytes) + " bytes (" +
                     (generated_bytes == plan->bitstream.total_bytes
                          ? "matches model"
                          : "MODEL MISMATCH") +
                     ")"});
  std::cout << table.to_ascii();

  if (args.has("shaped")) {
    const auto shaped = find_l_shaped_prr(req, device.fabric);
    if (shaped && shaped->shape.size() < plan->organization.size()) {
      std::cout << "\nL-shaped alternative: " << shaped->shape.size()
                << " cells, " << shaped->bitstream.total_bytes
                << " bytes (saves "
                << plan->organization.size() - shaped->shape.size()
                << " cells)\n";
    } else {
      std::cout << "\nno L-shaped alternative beats the rectangle\n";
    }
  }
  return 0;
}

int cmd_bitstream(const Args& args) {
  if (!args.has("device")) usage("bitstream needs --device");
  const Device& device = DeviceDb::instance().get(args.get("device", ""));
  const PrmRequirements req = requirements_for(args);
  const auto plan = find_prr(req, device.fabric);
  if (!plan) {
    std::cout << "no feasible PRR on " << device.name << '\n';
    return 1;
  }
  const Family family = device.fabric.family();
  const auto words = generate_bitstream(*plan, family);
  std::cout << disassemble(words, family);
  if (args.has("out")) {
    const auto bytes = to_bytes(words, family);
    std::ofstream out{args.get("out", ""), std::ios::binary};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::cout << "wrote " << bytes.size() << " bytes to "
              << args.get("out", "") << '\n';
  }
  return 0;
}

int cmd_rank(const Args& args) {
  if (args.positional.empty()) usage("rank needs at least one PRM");
  std::vector<PrmInfo> prms;
  for (const std::string& name : args.positional) {
    // Requirements are family-specific; synthesize per candidate family is
    // overkill for a ranking - use Virtex-5 as the canonical mapper.
    const SynthesisResult result =
        synthesize(make_prm(name), SynthOptions{Family::kVirtex5});
    prms.push_back(
        PrmInfo{name, PrmRequirements::from_report(result.report), 0});
  }
  WorkloadParams wp;
  wp.count = 100;
  wp.prm_count = narrow<u32>(prms.size());
  DeviceSelectOptions options;
  options.workers = workers_flag(args);
  const auto choices = rank_devices(prms, make_workload(wp), options);
  TextTable table{{"rank", "device", "feasible", "fabric used",
                   "bitstream total", "makespan (ms)"}};
  int rank = 1;
  for (const DeviceChoice& choice : choices) {
    table.add_row({std::to_string(rank++), choice.device,
                   choice.feasible ? "yes" : choice.reason,
                   choice.feasible
                       ? format_fixed(choice.fabric_fraction * 100, 1) + "%"
                       : "-",
                   choice.feasible
                       ? format_bytes(static_cast<double>(
                             choice.total_bitstream_bytes))
                       : "-",
                   choice.feasible
                       ? format_fixed(choice.makespan_s * 1e3, 2)
                       : "-"});
  }
  std::cout << table.to_ascii();
  return 0;
}

int cmd_netlist(const Args& args) {
  if (args.positional.empty()) usage("netlist needs a PRM");
  const std::string text = netlist_to_text(make_prm(args.positional[0]));
  if (args.has("out")) {
    std::ofstream out{args.get("out", "")};
    out << text;
    std::cout << "wrote " << args.get("out", "") << '\n';
  } else {
    std::cout << text;
  }
  return 0;
}

int cmd_explore(const Args& args) {
  if (!args.has("device")) usage("explore needs --device");
  if (args.positional.size() < 2) usage("explore needs at least two PRMs");
  const Device& device = DeviceDb::instance().get(args.get("device", ""));
  std::vector<PrmInfo> prms;
  for (const std::string& name : args.positional) {
    const SynthesisResult result =
        synthesize(make_prm(name), SynthOptions{device.fabric.family()});
    prms.push_back(PrmInfo{name, PrmRequirements::from_report(result.report),
                           0});
  }
  WorkloadParams wp;
  wp.count = 100;
  wp.prm_count = narrow<u32>(prms.size());
  ExploreOptions options;
  options.workers = workers_flag(args);
  const auto points = explore(prms, device.fabric, make_workload(wp), options);
  TextTable table{{"partitioning", "area", "makespan (ms)", "feasible"}};
  for (const DesignPoint& point : points) {
    std::string partition;
    for (const auto& group : point.partition) {
      partition += "{";
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (i) partition += ",";
        partition += prms[group[i]].name;
      }
      partition += "}";
    }
    table.add_row({partition, std::to_string(point.total_prr_area),
                   point.feasible ? format_fixed(point.makespan_s * 1e3, 2)
                                  : "-",
                   point.feasible ? "yes" : point.infeasible_reason});
  }
  std::cout << table.to_ascii();
  const auto front = pareto_front(points);
  std::cout << "pareto-optimal: " << front.size() << " of " << points.size()
            << " partitionings\n";
  return 0;
}

/// Global observability flags: --trace-out, --metrics-out, --log-level.
struct ObsOptions {
  std::string trace_out;
  std::string metrics_out;
  bool active() const { return !trace_out.empty() || !metrics_out.empty(); }
};

ObsOptions configure_obs(const Args& args) {
  if (args.has("log-level")) {
    const auto level = parse_log_level(args.get("log-level", ""));
    if (!level) usage("unknown log level '" + args.get("log-level", "") + "'");
    set_log_level(*level);
  }
  ObsOptions options;
  options.trace_out = args.get("trace-out", "");
  options.metrics_out = args.get("metrics-out", "");
  if (!options.trace_out.empty()) obs::set_tracing(true);
  if (options.active()) obs::set_metrics_enabled(true);
  return options;
}

/// Write the requested artifacts and print the end-of-run summary.
/// Returns nonzero if an output file could not be written.
int finalize_obs(const ObsOptions& options) {
  if (!options.active()) return 0;
  int rc = 0;
  const bool traced = !options.trace_out.empty();
  obs::set_tracing(false);
  if (traced) {
    std::ofstream out{options.trace_out};
    obs::write_chrome_trace(out);
    if (!out) {
      std::cerr << "error: cannot write trace to '" << options.trace_out
                << "'\n";
      rc = 1;
    }
  }
  if (!options.metrics_out.empty()) {
    std::ofstream out{options.metrics_out};
    out << obs::registry().to_json() << '\n';
    if (!out) {
      std::cerr << "error: cannot write metrics to '" << options.metrics_out
                << "'\n";
      rc = 1;
    }
  }

  std::cout << "\n=== metrics ===\n";
  TextTable metrics{{"metric", "value"}};
  for (const auto& snap : obs::registry().snapshot()) {
    switch (snap.kind) {
      case obs::MetricKind::kCounter:
        metrics.add_row({snap.name, std::to_string(snap.count)});
        break;
      case obs::MetricKind::kGauge:
        metrics.add_row({snap.name, format_fixed(snap.value, 3)});
        break;
      case obs::MetricKind::kHistogram:
        metrics.add_row({snap.name, "count=" + std::to_string(snap.count) +
                                        " sum=" + format_fixed(snap.value, 0)});
        break;
    }
  }
  std::cout << metrics.to_ascii();
  if (traced) {
    std::cout << "\n=== span self-time (open " << options.trace_out
              << " at https://ui.perfetto.dev) ===\n"
              << obs::trace_summary_table().to_ascii();
    if (obs::trace_dropped_count() > 0) {
      std::cout << "note: " << obs::trace_dropped_count()
                << " spans dropped (per-thread ring wrapped)\n";
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    const ObsOptions obs_options = configure_obs(args);
    if (args.has("no-plan-cache")) set_plan_cache_enabled(false);
    int rc = 0;
    if (command == "devices") {
      rc = cmd_devices();
    } else if (command == "synth") {
      rc = cmd_synth(args);
    } else if (command == "plan") {
      rc = cmd_plan(args);
    } else if (command == "bitstream") {
      rc = cmd_bitstream(args);
    } else if (command == "explore") {
      rc = cmd_explore(args);
    } else if (command == "netlist") {
      rc = cmd_netlist(args);
    } else if (command == "rank") {
      rc = cmd_rank(args);
    } else {
      usage("unknown command '" + command + "'");
    }
    const int obs_rc = finalize_obs(obs_options);
    return rc != 0 ? rc : obs_rc;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
