# Smoke: `plan --trace-out` must emit a non-empty, parsable Chrome trace
# whose traceEvents include the flow's key spans.
cmake_policy(SET CMP0057 NEW)  # IN_LIST (script mode has no project defaults)
execute_process(
  COMMAND ${CLI} plan fir --device v5lx110t --trace-out ${OUT}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout_text)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "plan --trace-out exited with ${rc}")
endif()

if(NOT EXISTS ${OUT})
  message(FATAL_ERROR "trace file ${OUT} was not written")
endif()
file(READ ${OUT} trace_json)
if(trace_json STREQUAL "")
  message(FATAL_ERROR "trace file ${OUT} is empty")
endif()

# string(JSON) fails the script with a FATAL_ERROR if the JSON is malformed.
string(JSON n_events LENGTH "${trace_json}" traceEvents)
if(n_events EQUAL 0)
  message(FATAL_ERROR "trace has no traceEvents")
endif()

# Collect every event name and check the flow's key spans are present.
set(names "")
math(EXPR last "${n_events} - 1")
foreach(i RANGE 0 ${last})
  string(JSON name ERROR_VARIABLE err GET "${trace_json}" traceEvents ${i} name)
  if(err STREQUAL "NOTFOUND")
    list(APPEND names "${name}")
  endif()
endforeach()
foreach(want prr_search placement bitstream_gen)
  if(NOT "${want}" IN_LIST names)
    message(FATAL_ERROR "trace is missing span '${want}' (got: ${names})")
  endif()
endforeach()

# The end-of-run metrics summary must land on stdout.
if(NOT stdout_text MATCHES "=== metrics ===")
  message(FATAL_ERROR "plan stdout is missing the metrics summary table")
endif()
