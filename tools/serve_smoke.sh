#!/usr/bin/env bash
# Serve smoke: the daemon end-to-end contract a unit test cannot pin.
#
# Starts `prcost serve` with a cache dir, waits for the readiness line,
# pumps 50 mixed requests through `prcost client`, scrapes the live
# OpenMetrics registry over the wire, then sends SIGTERM and asserts a
# graceful drain: exit 0, the counters line, the Unix socket unlinked,
# and warm-start snapshots flushed to the cache dir.
#
# Usage: serve_smoke.sh <prcost-binary> [workdir]
set -u

CLI=${1:?usage: serve_smoke.sh <prcost-binary> [workdir]}
WORK=${2:-$(mktemp -d)}
SOCK="$WORK/serve_smoke.sock"
CACHE="$WORK/serve_smoke_cache"
LOG="$WORK/serve_smoke.log"
REQ="$WORK/serve_smoke_requests.jsonl"
OUT="$WORK/serve_smoke_responses.jsonl"

fail() { echo "serve_smoke: FAIL: $*" >&2; sed 's/^/  daemon: /' "$LOG" >&2; exit 1; }

rm -rf "$SOCK" "$CACHE" "$OUT"
mkdir -p "$CACHE"

"$CLI" serve --socket "$SOCK" --cache-dir "$CACHE" >"$LOG" 2>&1 &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null' EXIT

for _ in $(seq 200); do
  grep -q "serve: listening" "$LOG" 2>/dev/null && break
  kill -0 "$PID" 2>/dev/null || fail "daemon died before readiness"
  sleep 0.05
done
grep -q "serve: listening" "$LOG" || fail "daemon never became ready"
[ -S "$SOCK" ] || fail "readiness line printed but socket missing"

# 50 mixed requests cycling plan / bitstream / synth / rank / ping.
: >"$REQ"
for i in $(seq 50); do
  case $((i % 5)) in
    0) echo '{"op":"ping","id":'"$i"'}' ;;
    1) echo '{"op":"plan","device":"xc5vlx110t","prm":"fir","cross_check":false,"id":'"$i"'}' ;;
    2) echo '{"op":"bitstream","device":"xc6vlx75t","prm":"uart","id":'"$i"'}' ;;
    3) echo '{"op":"synth","prm":"crc32","family":"v5","id":'"$i"'}' ;;
    4) echo '{"op":"rank","prms":["fir","mips"],"id":'"$i"'}' ;;
  esac >>"$REQ"
done
"$CLI" client --socket "$SOCK" "$REQ" >"$OUT" || fail "client run failed"

RESPONSES=$(wc -l <"$OUT")
[ "$RESPONSES" -eq 50 ] || fail "expected 50 responses, got $RESPONSES"
grep -q '"error"' "$OUT" && fail "unexpected error response: $(grep -m1 '"error"' "$OUT")"

# The live registry is one request away; the scrape must carry the
# serve-side series and the OpenMetrics terminator.
SCRAPE=$(echo '{"op":"metrics"}' | "$CLI" client --socket "$SOCK") \
  || fail "metrics scrape failed"
case $SCRAPE in
  *prcost_serve_requests_total*) ;;
  *) fail "scrape missing serve counters" ;;
esac
case $SCRAPE in
  *"# EOF"*) ;;
  *) fail "scrape missing OpenMetrics terminator" ;;
esac

# Graceful drain: SIGTERM -> exit 0, counters printed, socket unlinked,
# snapshots flushed for the next daemon's warm start.
kill -TERM "$PID"
wait "$PID"
RC=$?
trap - EXIT
[ "$RC" -eq 0 ] || fail "daemon exited $RC on SIGTERM, want 0"
grep -q "serve: .* request(s)" "$LOG" || fail "missing drain counters line"
[ -S "$SOCK" ] && fail "unix socket not unlinked after drain"
[ -s "$CACHE/plan_cache.snap" ] || fail "plan cache snapshot not flushed"
[ -s "$CACHE/bitstream_cache.snap" ] || fail "bitstream cache snapshot not flushed"

echo "serve_smoke: OK ($RESPONSES responses, drained clean)"
