# Smoke: dump a PRM netlist to a file, then size a PRR from that file.
execute_process(COMMAND ${CLI} netlist uart -o uart.net RESULT_VARIABLE r1)
if(NOT r1 EQUAL 0)
  message(FATAL_ERROR "netlist dump failed")
endif()
execute_process(COMMAND ${CLI} plan --device xc5vlx110t --netlist uart.net
                RESULT_VARIABLE r2)
if(NOT r2 EQUAL 0)
  message(FATAL_ERROR "plan from netlist file failed")
endif()
