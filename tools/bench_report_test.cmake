# bench_report contract: baseline append, clean re-check, regression
# detection with exit 3, and --report-only downgrading that to 0.
#
# Usage: cmake -DTOOL=<bench_report> -DWORK=<dir> -P bench_report_test.cmake

function(expect_rc rc want label)
  if(NOT rc EQUAL ${want})
    message(FATAL_ERROR "${label}: exited ${rc}, want ${want}")
  endif()
endfunction()

set(traj ${WORK}/bench_report_test_trajectory.jsonl)
file(REMOVE ${traj})

# Synthetic bench output: one higher-better and one lower-better metric,
# plus a directionless count that must never be compared.
file(WRITE ${WORK}/bench_report_good.json
  "{\"partitions_per_sec\": 100.0, \"gen_ns\": 50.0, \"tasks\": 30}\n")

# First run: no previous entry, appends the baseline, exits 0 even with
# --check (nothing to compare against).
execute_process(COMMAND ${TOOL} --in fake=${WORK}/bench_report_good.json
                --trajectory ${traj} --check --label baseline
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "baseline run")
if(NOT out MATCHES "no previous entry")
  message(FATAL_ERROR "baseline run: expected baseline-only note: ${out}")
endif()
file(READ ${traj} entry)
foreach(field "\"ts\"" "\"git_sha\"" "\"compiler\"" "\"host\""
        "\"label\":\"baseline\"" "fake.partitions_per_sec")
  if(NOT entry MATCHES "${field}")
    message(FATAL_ERROR "trajectory entry missing ${field}: ${entry}")
  endif()
endforeach()

# Same numbers again: compared clean, appends a second entry.
execute_process(COMMAND ${TOOL} --in fake=${WORK}/bench_report_good.json
                --trajectory ${traj} --check
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "clean re-check")
if(NOT out MATCHES "2 metric\\(s\\) compared, 0 regression\\(s\\)")
  message(FATAL_ERROR "clean re-check: unexpected report: ${out}")
endif()

# 50% worse in both directions (throughput halved, latency doubled):
# --check exits 3 and names both metrics, without appending (--no-append).
file(WRITE ${WORK}/bench_report_bad.json
  "{\"partitions_per_sec\": 50.0, \"gen_ns\": 100.0, \"tasks\": 30}\n")
execute_process(COMMAND ${TOOL} --in fake=${WORK}/bench_report_bad.json
                --trajectory ${traj} --check --no-append
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 3 "regression check")
if(NOT out MATCHES "REGRESSION fake.partitions_per_sec" OR
   NOT out MATCHES "REGRESSION fake.gen_ns")
  message(FATAL_ERROR "regression check: metrics not flagged: ${out}")
endif()

# --report-only: same regressions reported, but exit 0 for advisory CI.
execute_process(COMMAND ${TOOL} --in fake=${WORK}/bench_report_bad.json
                --trajectory ${traj} --check --no-append --report-only
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "report-only")
if(NOT out MATCHES "REGRESSION")
  message(FATAL_ERROR "report-only: regressions not reported: ${out}")
endif()

# A generous tolerance accepts the same delta.
execute_process(COMMAND ${TOOL} --in fake=${WORK}/bench_report_bad.json
                --trajectory ${traj} --check --no-append --tolerance 1.5
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "wide tolerance")

# Usage errors: no inputs at all, malformed --in.
execute_process(COMMAND ${TOOL} --trajectory ${traj}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
expect_rc(${rc} 2 "no inputs")
execute_process(COMMAND ${TOOL} --in nonsense
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
expect_rc(${rc} 2 "malformed --in")

# Runtime error: unreadable input file.
execute_process(COMMAND ${TOOL} --in fake=/no/such/bench.json
                --trajectory ${traj}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
expect_rc(${rc} 1 "missing input file")

# A malformed last trajectory line (truncated write, merge artifact) must
# not wedge --check: warn, treat as no baseline, exit 0, and the append
# repairs the trajectory with a fresh parseable entry.
set(traj_broken ${WORK}/bench_report_test_broken.jsonl)
file(WRITE ${traj_broken} "{\"ts\":\"t\",\"metrics\":{\"fake.gen_ns\"\n")
execute_process(COMMAND ${TOOL} --in fake=${WORK}/bench_report_good.json
                --trajectory ${traj_broken} --check
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "malformed trajectory tolerated")
if(NOT err MATCHES "ignoring malformed last entry")
  message(FATAL_ERROR "malformed trajectory: missing warning: ${err}")
endif()
if(NOT out MATCHES "no previous entry")
  message(FATAL_ERROR "malformed trajectory: expected baseline-only: ${out}")
endif()
execute_process(COMMAND ${TOOL} --in fake=${WORK}/bench_report_good.json
                --trajectory ${traj_broken} --check --no-append
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "recovered trajectory compares clean")
if(NOT out MATCHES "compared, 0 regression")
  message(FATAL_ERROR "recovered trajectory: no comparison ran: ${out}")
endif()

# An empty trajectory file is a clean no-baseline case, not an error.
set(traj_empty ${WORK}/bench_report_test_empty.jsonl)
file(WRITE ${traj_empty} "")
execute_process(COMMAND ${TOOL} --in fake=${WORK}/bench_report_good.json
                --trajectory ${traj_empty} --check --no-append
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "empty trajectory")
if(NOT out MATCHES "no previous entry")
  message(FATAL_ERROR "empty trajectory: expected baseline-only: ${out}")
endif()

message(STATUS "bench_report contract holds")
