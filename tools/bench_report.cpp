// bench_report: the continuous perf-regression harness.
//
// Ingests the JSON emitted by the perf_* benches (from files via --in, or
// by running the bench itself via --run), flattens every numeric leaf into
// a "<bench>.<path>" metric, stamps the set with timestamp / git SHA /
// compiler / host, appends one JSONL entry to a trajectory file, and
// compares against the previous entry. Only keys whose name implies a
// direction are compared:
//
//   higher is better:  contains "per_sec", contains "speedup"
//   lower  is better:  ends with "_ns" or "_ms", contains "seconds_per"
//
// A metric beyond --tolerance (default 0.25 = 25%) in the bad direction is
// a regression; with --check the process exits 3 so CI can gate on it
// (--report-only downgrades that to 0 while still printing the report).
//
//   bench_report [--in name=path.json]... [--run name=command]...
//                [--trajectory FILE] [--tolerance F] [--label STR]
//                [--check] [--report-only] [--no-append]
//
// Exit codes: 0 ok, 1 error, 2 usage, 3 regression detected (--check).
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "util/ints.hpp"
#include "util/json.hpp"

namespace {

using namespace prcost;

struct Metric {
  std::string key;
  double value = 0;
};

// Depth-first flatten of numeric leaves: {"cache":{"hits":3}} under bench
// name "dse" becomes {"dse.cache.hits", 3}. Arrays flatten by index.
void flatten(const Json& j, const std::string& prefix,
             std::vector<Metric>& out) {
  if (j.is_number()) {
    out.push_back(Metric{prefix, j.as_double()});
  } else if (j.is_object()) {
    for (const auto& [key, value] : j.as_object()) {
      flatten(value, prefix + "." + key, out);
    }
  } else if (j.is_array()) {
    const auto& items = j.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      flatten(items[i], prefix + "." + std::to_string(i), out);
    }
  }
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// +1 higher-better, -1 lower-better, 0 not a comparable metric (counts,
// sizes, and configuration echoes carry no regression signal).
int direction(const std::string& key) {
  // "speedup" is matched anywhere, not just as a suffix: the benches emit
  // "speedup_vs_bit_serial" / "speedup_vs_sliced", which a suffix match
  // silently skipped.
  if (key.find("per_sec") != std::string::npos ||
      key.find("speedup") != std::string::npos) {
    return 1;
  }
  if (ends_with(key, "_ns") || ends_with(key, "_ms") ||
      key.find("seconds_per") != std::string::npos) {
    return -1;
  }
  return 0;
}

// Capture a command's stdout; null when the command fails. Used both for
// --run benches and for asking git the current SHA.
std::optional<std::string> capture(const std::string& command) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return std::nullopt;
  std::string output;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    output.append(buffer, n);
  }
  if (pclose(pipe) != 0) return std::nullopt;
  return output;
}

std::string git_sha() {
  if (const char* env = std::getenv("PRCOST_GIT_SHA")) return env;
  if (auto out = capture("git rev-parse --short HEAD 2>/dev/null")) {
    while (!out->empty() && (out->back() == '\n' || out->back() == '\r')) {
      out->pop_back();
    }
    if (!out->empty()) return *out;
  }
  return "unknown";
}

std::string timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buffer;
}

std::string hostname() {
  char buffer[256] = {};
  if (gethostname(buffer, sizeof buffer - 1) != 0) return "unknown";
  return buffer;
}

std::string compiler_version() {
#if defined(__clang__)
  return std::string{"clang "} + __clang_version__;
#elif defined(__GNUC__)
  return std::string{"gcc "} + __VERSION__;
#else
  return "unknown";
#endif
}

// Last non-empty line of the trajectory file = the previous entry.
std::optional<Json> previous_entry(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  if (last.empty()) return std::nullopt;
  return Json::parse(last);
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --in NAME=PATH     ingest a bench JSON file under metric prefix"
         " NAME\n"
      << "  --run NAME=CMD     run CMD, parse its stdout as bench JSON\n"
      << "  --trajectory FILE  JSONL history file (default"
         " BENCH_trajectory.jsonl)\n"
      << "  --tolerance F      allowed fractional change (default 0.25)\n"
      << "  --label STR        free-form label stamped into the entry\n"
      << "  --check            exit 3 when any metric regressed\n"
      << "  --report-only      with --check: report regressions, exit 0\n"
      << "  --no-append        compare only; do not extend the trajectory\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> inputs;  // name -> path
  std::vector<std::pair<std::string, std::string>> runs;    // name -> cmd
  std::string trajectory = "BENCH_trajectory.jsonl";
  std::string label;
  double tolerance = 0.25;
  bool check = false;
  bool report_only = false;
  bool append = true;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string{argv[++i]};
    };
    const auto split_name = [](const std::string& v)
        -> std::optional<std::pair<std::string, std::string>> {
      const auto eq = v.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == v.size()) {
        return std::nullopt;
      }
      return std::pair{v.substr(0, eq), v.substr(eq + 1)};
    };
    if (flag == "--in" || flag == "--run") {
      const auto v = value();
      const auto pair = v ? split_name(*v) : std::nullopt;
      if (!pair) {
        std::cerr << flag << " needs NAME=VALUE\n";
        return usage(argv[0]);
      }
      (flag == "--in" ? inputs : runs).push_back(*pair);
    } else if (flag == "--trajectory") {
      const auto v = value();
      if (!v) return usage(argv[0]);
      trajectory = *v;
    } else if (flag == "--tolerance") {
      const auto v = value();
      if (!v) return usage(argv[0]);
      tolerance = std::stod(*v);
    } else if (flag == "--label") {
      const auto v = value();
      if (!v) return usage(argv[0]);
      label = *v;
    } else if (flag == "--check") {
      check = true;
    } else if (flag == "--report-only") {
      report_only = true;
    } else if (flag == "--no-append") {
      append = false;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return usage(argv[0]);
    }
  }
  if (inputs.empty() && runs.empty()) {
    std::cerr << "need at least one --in or --run\n";
    return usage(argv[0]);
  }

  std::vector<Metric> metrics;
  try {
    for (const auto& [name, path] : inputs) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "error: cannot read " << path << "\n";
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      flatten(Json::parse(text.str()), name, metrics);
    }
    for (const auto& [name, command] : runs) {
      const auto output = capture(command);
      if (!output) {
        std::cerr << "error: command failed: " << command << "\n";
        return 1;
      }
      flatten(Json::parse(*output), name, metrics);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (metrics.empty()) {
    std::cerr << "error: no numeric metrics found in the inputs\n";
    return 1;
  }

  // ----------------------------------------------- compare vs previous --
  // A damaged trajectory (truncated write, merge artifact) must not wedge
  // the harness: warn, act as if there is no baseline, and let the append
  // below start a fresh comparable entry. CI with --check then passes
  // cleanly instead of failing on a parse error forever.
  std::optional<Json> previous;
  try {
    previous = previous_entry(trajectory);
  } catch (const std::exception& e) {
    std::cerr << "warning: ignoring malformed last entry in " << trajectory
              << " (" << e.what() << "); treating as no baseline\n";
  }
  const Json* prev_metrics =
      previous ? previous->find("metrics") : nullptr;

  int regressions = 0;
  int compared = 0;
  for (const auto& metric : metrics) {
    const int dir = direction(metric.key);
    if (dir == 0 || prev_metrics == nullptr) continue;
    const Json* prev = prev_metrics->find(metric.key);
    if (prev == nullptr || !prev->is_number()) continue;
    const double before = prev->as_double();
    if (before <= 0) continue;
    ++compared;
    const double change = (metric.value - before) / before;
    const bool regressed = dir > 0 ? change < -tolerance : change > tolerance;
    if (regressed) {
      ++regressions;
      std::printf("REGRESSION %-44s %12.4g -> %-12.4g (%+.1f%%, %s better)\n",
                  metric.key.c_str(), before, metric.value, change * 100,
                  dir > 0 ? "higher" : "lower");
    } else {
      std::printf("ok         %-44s %12.4g -> %-12.4g (%+.1f%%)\n",
                  metric.key.c_str(), before, metric.value, change * 100);
    }
  }
  if (prev_metrics == nullptr) {
    std::printf("no previous entry in %s; baseline only\n",
                trajectory.c_str());
  } else {
    std::printf("%d metric(s) compared, %d regression(s), tolerance %.0f%%\n",
                compared, regressions, tolerance * 100);
  }

  // ------------------------------------------------------------ append --
  if (append) {
    Json entry = Json::object();
    entry.set("ts", timestamp_utc());
    entry.set("git_sha", git_sha());
    entry.set("compiler", compiler_version());
    entry.set("host", hostname());
    if (!label.empty()) entry.set("label", label);
    Json flat = Json::object();
    for (const auto& metric : metrics) flat.set(metric.key, metric.value);
    entry.set("metrics", std::move(flat));
    std::ofstream out(trajectory, std::ios::app);
    if (!out) {
      std::cerr << "error: cannot append to " << trajectory << "\n";
      return 1;
    }
    out << entry.dump() << "\n";
    std::printf("appended entry to %s\n", trajectory.c_str());
  }

  if (check && regressions > 0 && !report_only) return 3;
  return 0;
}
