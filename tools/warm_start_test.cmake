# Warm-start smoke: a --cache-dir run must produce byte-identical output
# cold (empty dir), warm (snapshots present), and after snapshot
# corruption (clean cold start, snapshots rewritten).
set(CACHE_DIR ${WORK}/warm_start_cache)
file(REMOVE_RECURSE ${CACHE_DIR})

# Cold run: populates the snapshots.
execute_process(COMMAND ${CLI} plan fir --device xc5vlx110t
                        --cache-dir ${CACHE_DIR}
                OUTPUT_VARIABLE cold RESULT_VARIABLE r1)
if(NOT r1 EQUAL 0)
  message(FATAL_ERROR "cold --cache-dir plan failed")
endif()
if(NOT EXISTS ${CACHE_DIR}/plan_cache.snap)
  message(FATAL_ERROR "plan cache snapshot was not written")
endif()
if(NOT EXISTS ${CACHE_DIR}/bitstream_cache.snap)
  message(FATAL_ERROR "bitstream cache snapshot was not written")
endif()

# Warm run: loads the snapshots; output must be byte-identical.
execute_process(COMMAND ${CLI} plan fir --device xc5vlx110t
                        --cache-dir ${CACHE_DIR}
                OUTPUT_VARIABLE warm RESULT_VARIABLE r2)
if(NOT r2 EQUAL 0)
  message(FATAL_ERROR "warm --cache-dir plan failed")
endif()
if(NOT cold STREQUAL warm)
  message(FATAL_ERROR "warm output differs from cold output")
endif()

# Bitstream path, same contract.
execute_process(COMMAND ${CLI} bitstream uart --device xc5vlx110t
                        --cache-dir ${CACHE_DIR}
                OUTPUT_VARIABLE bits_cold RESULT_VARIABLE r3)
execute_process(COMMAND ${CLI} bitstream uart --device xc5vlx110t
                        --cache-dir ${CACHE_DIR}
                OUTPUT_VARIABLE bits_warm RESULT_VARIABLE r4)
if(NOT r3 EQUAL 0 OR NOT r4 EQUAL 0)
  message(FATAL_ERROR "--cache-dir bitstream run failed")
endif()
if(NOT bits_cold STREQUAL bits_warm)
  message(FATAL_ERROR "warm bitstream output differs from cold output")
endif()

# Corrupt both snapshots: the run must cold-start cleanly and still give
# byte-identical output (and exit 0).
file(WRITE ${CACHE_DIR}/plan_cache.snap "garbage, not a snapshot")
file(WRITE ${CACHE_DIR}/bitstream_cache.snap "PRCS truncated")
execute_process(COMMAND ${CLI} plan fir --device xc5vlx110t
                        --cache-dir ${CACHE_DIR}
                OUTPUT_VARIABLE recovered RESULT_VARIABLE r5)
if(NOT r5 EQUAL 0)
  message(FATAL_ERROR "corrupt snapshots must cold-start, not fail")
endif()
if(NOT cold STREQUAL recovered)
  message(FATAL_ERROR "post-corruption output differs from cold output")
endif()
