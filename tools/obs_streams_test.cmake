# Observability stream routing: "-" for --metrics-out / --trace-out /
# --trace-folded means stderr, never stdout, so piping the result JSON of
# a batch (or the report of a plan) stays clean while artifacts flow to a
# separate descriptor.
#
# Usage: cmake -DCLI=<prcost> -DWORK=<dir> -P obs_streams_test.cmake

function(expect_rc rc want label)
  if(NOT rc EQUAL ${want})
    message(FATAL_ERROR "${label}: exited ${rc}, want ${want}")
  endif()
endfunction()

# --metrics-out -: the JSON artifact goes to stderr; stdout keeps the human
# report (including the "=== metrics ===" summary table).
execute_process(COMMAND ${CLI} plan fir --device xc5vlx110t --metrics-out -
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "plan --metrics-out -")
if(out MATCHES "\"counters\"")
  message(FATAL_ERROR "metrics JSON leaked to stdout")
endif()
if(NOT err MATCHES "\"counters\"")
  message(FATAL_ERROR "metrics JSON missing from stderr: ${err}")
endif()
if(NOT out MATCHES "=== metrics ===")
  message(FATAL_ERROR "metrics summary table missing from stdout")
endif()

# --trace-out -: Chrome trace JSON on stderr only.
execute_process(COMMAND ${CLI} plan fir --device xc5vlx110t --trace-out -
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "plan --trace-out -")
if(out MATCHES "traceEvents")
  message(FATAL_ERROR "trace JSON leaked to stdout")
endif()
if(NOT err MATCHES "traceEvents")
  message(FATAL_ERROR "trace JSON missing from stderr: ${err}")
endif()

# --trace-folded -: folded stacks ("name;child self_ns") on stderr only.
execute_process(COMMAND ${CLI} plan fir --device xc5vlx110t --trace-folded -
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc(${rc} 0 "plan --trace-folded -")
if(NOT err MATCHES "prr_search")
  message(FATAL_ERROR "folded stacks missing from stderr: ${err}")
endif()
if(out MATCHES ";prr_search")
  message(FATAL_ERROR "folded stacks leaked to stdout")
endif()

# No stray file literally named "-" may appear.
if(EXISTS "${WORK}/-")
  message(FATAL_ERROR "a file named '-' was created")
endif()

# Batch with --stats: every result line carries a stats block whose cache
# sub-object has the plan-cache fields; without the flag the output is
# stats-free (byte-identity with the pre-telemetry wire format).
file(WRITE ${WORK}/obs_streams_batch.jsonl
  "{\"op\":\"plan\",\"device\":\"xc5vlx110t\",\"prm\":\"fir\"}\n")
execute_process(COMMAND ${CLI} batch ${WORK}/obs_streams_batch.jsonl --stats
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
expect_rc(${rc} 0 "batch --stats")
if(NOT out MATCHES "\"stats\":{\"wall_ms\"" OR NOT out MATCHES "plan_hits")
  message(FATAL_ERROR "batch --stats: stats block missing: ${out}")
endif()
execute_process(COMMAND ${CLI} batch ${WORK}/obs_streams_batch.jsonl
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
expect_rc(${rc} 0 "batch without --stats")
if(out MATCHES "stats")
  message(FATAL_ERROR "stats leaked into stats-off batch output: ${out}")
endif()

message(STATUS "observability stream routing holds")
