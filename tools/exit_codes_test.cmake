# CLI exit-code contract: 0 = success, 1 = runtime failure (message
# only, no usage banner), 2 = usage error (message + banner).
#
# Usage: cmake -DCLI=<prcost> -P exit_codes_test.cmake

function(expect_rc rc want label)
  if(NOT rc EQUAL ${want})
    message(FATAL_ERROR "${label}: exited ${rc}, want ${want}")
  endif()
endfunction()

# No command: usage error with banner.
execute_process(COMMAND ${CLI} RESULT_VARIABLE rc ERROR_VARIABLE err
                OUTPUT_QUIET)
expect_rc(${rc} 2 "bare invocation")
if(NOT err MATCHES "usage:")
  message(FATAL_ERROR "bare invocation: banner missing: ${err}")
endif()

# Unknown command: usage error with banner.
execute_process(COMMAND ${CLI} frobnicate RESULT_VARIABLE rc
                ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc(${rc} 2 "unknown command")
if(NOT err MATCHES "unknown command" OR NOT err MATCHES "usage:")
  message(FATAL_ERROR "unknown command: bad diagnostics: ${err}")
endif()

# Missing required flag: usage error.
execute_process(COMMAND ${CLI} plan fir RESULT_VARIABLE rc
                ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc(${rc} 2 "plan without --device")

# Malformed --workers value: usage error carrying the parse failure.
execute_process(COMMAND ${CLI} explore --device xc6vlx240t fir sdram
                --workers 3x RESULT_VARIABLE rc ERROR_VARIABLE err
                OUTPUT_QUIET)
expect_rc(${rc} 2 "malformed --workers")
if(NOT err MATCHES "--workers" OR NOT err MATCHES "3x")
  message(FATAL_ERROR "malformed --workers: error not surfaced: ${err}")
endif()

# Unknown device: runtime failure - message, no banner.
execute_process(COMMAND ${CLI} plan fir --device bogus RESULT_VARIABLE rc
                ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc(${rc} 1 "unknown device")
if(NOT err MATCHES "unknown device 'bogus'" OR err MATCHES "usage:")
  message(FATAL_ERROR "unknown device: bad diagnostics: ${err}")
endif()

# Unreadable batch input: runtime failure.
execute_process(COMMAND ${CLI} batch /no/such/file.jsonl RESULT_VARIABLE rc
                ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc(${rc} 1 "missing batch file")
if(err MATCHES "usage:")
  message(FATAL_ERROR "missing batch file: should not print banner: ${err}")
endif()

# Infeasible plan: runtime failure, verdict on stdout.
execute_process(COMMAND ${CLI} plan matmul --device xc5vlx110t
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
expect_rc(${rc} 1 "infeasible plan")
if(NOT out MATCHES "no feasible PRR")
  message(FATAL_ERROR "infeasible plan: verdict missing: ${out}")
endif()

message(STATUS "exit-code contract holds")
