# End-to-end check of `prcost batch`: feed a 102-request JSONL mix of
# valid, infeasible, unknown-name, malformed, and fault-injection lines
# and assert the contract - exit 0, exactly one well-formed JSON response
# per input line, in input order, with the documented stable error codes.
#
# Usage: cmake -DCLI=<prcost> -DWORK=<dir> -P batch_test.cmake

set(requests "${WORK}/batch_requests.jsonl")
set(responses "${WORK}/batch_responses.jsonl")

# Five request kinds, cycled to 100 lines. Every JSON line carries its
# index as "id" so the output-order assertion is direct.
set(body "")
foreach(i RANGE 0 99)
  math(EXPR kind "${i} % 5")
  if(kind EQUAL 0)
    string(APPEND body
      "{\"op\":\"plan\",\"device\":\"xc5vlx110t\",\"prm\":\"fir\",\"id\":${i}}\n")
  elseif(kind EQUAL 1)
    string(APPEND body "{\"op\":\"synth\",\"prm\":\"uart\",\"id\":${i}}\n")
  elseif(kind EQUAL 2)
    # matmul's DSP demand cannot fit the LX110T: structured "infeasible".
    string(APPEND body
      "{\"op\":\"plan\",\"device\":\"xc5vlx110t\",\"prm\":\"matmul\",\"id\":${i}}\n")
  elseif(kind EQUAL 3)
    string(APPEND body
      "{\"op\":\"plan\",\"device\":\"xc99\",\"prm\":\"fir\",\"id\":${i}}\n")
  else()
    string(APPEND body "not json at all (line ${i})\n")
  endif()
endforeach()
# Two fault-injection requests: a non-strict run that degrades gracefully
# (an ok envelope even though every transfer fails) and a strict run that
# must surface the stable "fault" error code.
string(APPEND body
  "{\"op\":\"faults\",\"device\":\"xc5vlx110t\",\"prms\":[\"fir\"],"
  "\"tasks\":10,\"fault_rate\":1.0,\"id\":100}\n")
string(APPEND body
  "{\"op\":\"faults\",\"device\":\"xc5vlx110t\",\"prms\":[\"fir\"],"
  "\"tasks\":10,\"fault_rate\":1.0,\"strict\":true,\"id\":101}\n")
file(WRITE "${requests}" "${body}")

execute_process(COMMAND ${CLI} batch "${requests}" -o "${responses}"
                --workers 4 RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batch exited ${rc} (want 0): ${err}")
endif()
if(NOT err MATCHES "batch: 102 requests, 41 ok, 61 failed")
  message(FATAL_ERROR "unexpected tally on stderr: ${err}")
endif()

file(STRINGS "${responses}" lines)
list(LENGTH lines count)
if(NOT count EQUAL 102)
  message(FATAL_ERROR "want 102 response lines, got ${count}")
endif()

set(i 0)
foreach(line IN LISTS lines)
  if(NOT line MATCHES "^\\{.*\\}$")
    message(FATAL_ERROR "line ${i} is not a JSON object: ${line}")
  endif()
  if(NOT CMAKE_VERSION VERSION_LESS 3.19)
    string(JSON root_type ERROR_VARIABLE json_err TYPE "${line}")
    if(json_err OR NOT root_type STREQUAL "OBJECT")
      message(FATAL_ERROR "line ${i} is not well-formed JSON: ${line}")
    endif()
  endif()
  if(i EQUAL 100)
    # Non-strict fault run: dropped tasks are data, not an error.
    if(NOT line MATCHES "\"id\":100[,}]" OR NOT line MATCHES "\"result\":"
       OR NOT line MATCHES "\"dropped_tasks\":10")
      message(FATAL_ERROR "line ${i}: want graceful fault result: ${line}")
    endif()
    math(EXPR i "${i} + 1")
    continue()
  endif()
  if(i EQUAL 101)
    # Strict fault run: permanent failure surfaces the stable "fault" code.
    if(NOT line MATCHES "\"id\":101[,}]"
       OR NOT line MATCHES "\"error\":\\{\"code\":\"fault\"")
      message(FATAL_ERROR "line ${i}: want fault error code: ${line}")
    endif()
    math(EXPR i "${i} + 1")
    continue()
  endif()
  math(EXPR kind "${i} % 5")
  if(kind EQUAL 4)
    # Malformed input has no id to echo; it must map to code "parse".
    if(NOT line MATCHES "\"error\":\\{\"code\":\"parse\"")
      message(FATAL_ERROR "line ${i}: want parse error, got: ${line}")
    endif()
  else()
    # In-order: response line i echoes request id i.
    if(NOT line MATCHES "\"id\":${i}[,}]")
      message(FATAL_ERROR "line ${i}: id out of order: ${line}")
    endif()
    if(kind EQUAL 2)
      if(NOT line MATCHES "\"error\":\\{\"code\":\"infeasible\"")
        message(FATAL_ERROR "line ${i}: want infeasible, got: ${line}")
      endif()
    elseif(kind EQUAL 3)
      if(NOT line MATCHES "\"error\":\\{\"code\":\"not_found\"")
        message(FATAL_ERROR "line ${i}: want not_found, got: ${line}")
      endif()
    else()
      if(NOT line MATCHES "\"result\":")
        message(FATAL_ERROR "line ${i}: want a result envelope: ${line}")
      endif()
    endif()
  endif()
  math(EXPR i "${i} + 1")
endforeach()

message(STATUS "batch contract holds over 102 mixed requests")
