// Quickstart: the paper's core use case in ~40 lines of API.
//
//   1. Build (or load) a PR module as a netlist.
//   2. "Run XST": synthesize to get the resource requirements.
//   3. Apply the PRR size/organization cost model (Eqs. 1-17).
//   4. Apply the partial bitstream size cost model (Eqs. 18-23).
//   5. Estimate the reconfiguration time - all without a PR design flow.
//
// Run: ./quickstart [device]   (default: xc5vlx110t)
#include <cstdio>
#include <iostream>

#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "netlist/generators.hpp"
#include "reconfig/controllers.hpp"
#include "synth/synthesizer.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace prcost;
  const std::string device_name = argc > 1 ? argv[1] : "xc5vlx110t";
  const Device& device = DeviceDb::instance().get(device_name);
  const Family family = device.fabric.family();

  // 1-2. Design entry + synthesis report.
  const SynthesisResult synth =
      synthesize(make_fir(), SynthOptions{family, false});
  std::cout << report_to_text(synth.report) << '\n';

  // 3. PRR size/organization model + Fig. 1 fabric search.
  const PrmRequirements req = PrmRequirements::from_report(synth.report);
  const auto plan = find_prr(req, device.fabric);
  if (!plan) {
    std::cerr << "no feasible PRR on " << device.name << '\n';
    return 1;
  }
  std::cout << "Smallest PRR on " << device.name << ": H="
            << plan->organization.h << ", W_CLB="
            << plan->organization.columns.clb_cols << ", W_DSP="
            << plan->organization.columns.dsp_cols << ", W_BRAM="
            << plan->organization.columns.bram_cols << "  (PRR size "
            << plan->organization.size() << ", window at column "
            << plan->window.first_col << ")\n";
  std::cout << "Utilization: CLB " << format_fixed(plan->ru.clb, 0)
            << "%  FF " << format_fixed(plan->ru.ff, 0) << "%  LUT "
            << format_fixed(plan->ru.lut, 0) << "%  DSP "
            << format_fixed(plan->ru.dsp, 0) << "%  BRAM "
            << format_fixed(plan->ru.bram, 0) << "%\n";

  // 4. Partial bitstream size - no PR design flow needed.
  std::cout << "Partial bitstream: " << plan->bitstream.total_bytes
            << " bytes (" << format_bytes(static_cast<double>(
                                 plan->bitstream.total_bytes))
            << ")\n";

  // 5. Reconfiguration time over a DMA ICAP controller from DDR.
  const DmaIcapController dma{default_icap(family)};
  const auto estimate =
      dma.estimate(plan->bitstream.total_bytes, StorageMedia::kDdrSdram);
  std::cout << "Reconfiguration time (DMA-ICAP, DDR): "
            << format_fixed(estimate.total_s * 1e6, 1) << " us\n";
  return 0;
}
