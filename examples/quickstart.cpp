// Quickstart: the paper's core use case through the Engine facade.
//
//   1. Build an Engine - it owns the device catalog, plan cache, worker
//      pool, and metrics registry.
//   2. Issue one typed PlanRequest: synthesis (Table I), the PRR
//      size/organization cost model (Eqs. 1-17), and the partial
//      bitstream size model (Eqs. 18-23) run in a single call.
//   3. Estimate the reconfiguration time - all without a PR design flow.
//
// Failures arrive as the structured taxonomy from util/error.hpp
// (NotFoundError for an unknown device, InfeasibleError when no PRR
// fits), so embedders can branch on error kind instead of parsing text.
//
// Run: ./quickstart [device]   (default: xc5vlx110t)
#include <cstdio>
#include <iostream>

#include "api/engine.hpp"
#include "reconfig/controllers.hpp"
#include "synth/report.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace prcost;

  // 1. One Engine per process; requests are plain structs.
  const api::Engine engine;
  api::PlanRequest request;
  request.device = argc > 1 ? argv[1] : "xc5vlx110t";
  request.source.prm = "fir";

  // 2. Synthesis + PRR search + bitstream model in one call.
  api::PlanResponse response;
  try {
    response = engine.plan(request);
  } catch (const InfeasibleError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }

  const api::SynthResponse synth =
      engine.synth({request.source,
                    engine.devices().get(request.device).fabric.family()});
  std::cout << report_to_text(synth.report) << '\n';

  const PrrPlan& plan = response.plan;
  std::cout << "Smallest PRR on " << response.device << ": H="
            << plan.organization.h << ", W_CLB="
            << plan.organization.columns.clb_cols << ", W_DSP="
            << plan.organization.columns.dsp_cols << ", W_BRAM="
            << plan.organization.columns.bram_cols << "  (PRR size "
            << plan.organization.size() << ", window at column "
            << plan.window.first_col << ")\n";
  std::cout << "Utilization: CLB " << format_fixed(plan.ru.clb, 0)
            << "%  FF " << format_fixed(plan.ru.ff, 0) << "%  LUT "
            << format_fixed(plan.ru.lut, 0) << "%  DSP "
            << format_fixed(plan.ru.dsp, 0) << "%  BRAM "
            << format_fixed(plan.ru.bram, 0) << "%\n";
  std::cout << "Partial bitstream: " << plan.bitstream.total_bytes
            << " bytes (" << format_bytes(static_cast<double>(
                                 plan.bitstream.total_bytes))
            << ")\n";

  // The plan call also cross-checked the model against a generated
  // bitstream and a real place-and-route into the chosen region.
  if (response.generated_bytes) {
    std::cout << "Generated bitstream matches model: "
              << (response.generated_matches_model() ? "yes" : "NO") << '\n';
  }

  // 3. Reconfiguration time over a DMA ICAP controller from DDR.
  const Family family =
      engine.devices().get(response.device).fabric.family();
  const DmaIcapController dma{default_icap(family)};
  const auto estimate =
      dma.estimate(plan.bitstream.total_bytes, StorageMedia::kDdrSdram);
  std::cout << "Reconfiguration time (DMA-ICAP, DDR): "
            << format_fixed(estimate.total_s * 1e6, 1) << " us\n";
  return 0;
}
