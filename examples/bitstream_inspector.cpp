// Generate a partial bitstream for a PRM, optionally write it to disk, and
// disassemble it - showing the Fig. 2 structure (sync header, per-row
// FAR/FDRI bursts, BRAM initialization, CRC/desync trailer) and verifying
// the Eq. (18) size prediction byte-for-byte.
//
// Run: ./bitstream_inspector [prm] [device] [out.bit]
//   prm    : fir | mips | sdram | aes | crc32 | uart (default fir)
//   device : catalog name (default xc5vlx110t)
#include <fstream>
#include <iostream>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "netlist/generators.hpp"
#include "synth/synthesizer.hpp"
#include "util/strings.hpp"

namespace {

prcost::Netlist make_prm(const std::string& name) {
  using namespace prcost;
  if (name == "fir") return make_fir();
  if (name == "mips") return make_mips5();
  if (name == "sdram") return make_sdram_ctrl();
  if (name == "aes") return make_aes_round();
  if (name == "crc32") return make_crc32();
  if (name == "uart") return make_uart();
  throw ContractError{"unknown PRM '" + name + "'"};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prcost;
  const std::string prm = argc > 1 ? argv[1] : "fir";
  const std::string device_name = argc > 2 ? argv[2] : "xc5vlx110t";
  const Device& device = DeviceDb::instance().get(device_name);
  const Family family = device.fabric.family();

  const SynthesisResult synth =
      synthesize(make_prm(prm), SynthOptions{family});
  const auto plan =
      find_prr(PrmRequirements::from_report(synth.report), device.fabric);
  if (!plan) {
    std::cerr << "no feasible PRR for " << prm << " on " << device.name
              << '\n';
    return 1;
  }

  const auto words = generate_bitstream(*plan, family);
  const auto bytes = to_bytes(words, family);
  std::cout << prm << " on " << device.name << ": model predicts "
            << plan->bitstream.total_bytes << " bytes, generator produced "
            << bytes.size() << " bytes ("
            << (bytes.size() == plan->bitstream.total_bytes ? "exact match"
                                                            : "MISMATCH")
            << ")\n\n";
  std::cout << disassemble(words, family);

  if (argc > 3) {
    std::ofstream out{argv[3], std::ios::binary};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::cout << "\nwrote " << bytes.size() << " bytes to " << argv[3]
              << '\n';
  }
  return 0;
}
