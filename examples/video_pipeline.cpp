// Hardware multitasking scenario: a smart-camera video pipeline whose
// stages (FIR pre-filter, CRC integrity check, AES encryption, soft MIPS
// post-processing) time-multiplex a pool of PRRs - the class of system the
// paper's introduction motivates.
//
// The example sizes one shared PRR pool with the cost models, floorplans
// it on an LX110T-class device, and compares scheduling policies and the
// non-PR (full reconfiguration) baseline.
#include <iostream>

#include "cost/floorplan.hpp"
#include "device/device_db.hpp"
#include "multitask/simulator.hpp"
#include "netlist/generators.hpp"
#include "reconfig/full_bitstream.hpp"
#include "synth/synthesizer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace prcost;
  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  const Family family = device.fabric.family();

  // Synthesize the pipeline stages and floorplan one PRR each.
  std::vector<PrmInfo> prms;
  Floorplanner floorplanner{device.fabric};
  floorplanner.reserve(0, device.fabric.num_columns(), 0, 1);  // static region
  const auto add_stage = [&](Netlist nl) {
    SynthesisResult synth = synthesize(std::move(nl), SynthOptions{family});
    const PrmRequirements req = PrmRequirements::from_report(synth.report);
    const auto placed = floorplanner.place(synth.report.module_name, req);
    if (!placed) {
      std::cerr << "cannot place " << synth.report.module_name << '\n';
      std::exit(1);
    }
    prms.push_back(PrmInfo{synth.report.module_name, req,
                           placed->plan.bitstream.total_bytes});
    std::cout << "stage " << synth.report.module_name << ": PRR "
              << placed->plan.organization.h << "x"
              << placed->plan.organization.width() << " at column "
              << placed->first_col << ", bitstream "
              << format_bytes(static_cast<double>(
                     placed->plan.bitstream.total_bytes))
              << '\n';
  };
  add_stage(make_mips5());
  add_stage(make_fir());
  add_stage(make_aes_round());
  add_stage(make_crc32());
  std::cout << "fabric occupancy after floorplanning: "
            << format_fixed(floorplanner.occupancy() * 100, 1) << "%\n\n";

  // Frame-processing workload: bursts of stage invocations.
  WorkloadParams wp;
  wp.count = 200;
  wp.prm_count = 4;
  wp.mean_interarrival_s = 0.8e-3;
  wp.mean_exec_s = 2.0e-3;
  const auto tasks = make_workload(wp);

  TextTable table{{"scheduler", "PRRs", "makespan (ms)", "reconfig (ms)",
                   "reuse hits", "mean wait (ms)"}};
  for (const SchedPolicy policy : kAllPolicies) {
    for (const u32 prr_count : {2u, 4u}) {
      SimConfig config;
      config.prr_count = prr_count;
      config.policy = policy;
      const SimResult result = simulate(prms, tasks, config);
      table.add_row({std::string{sched_policy_name(policy)},
                     std::to_string(prr_count),
                     format_fixed(result.makespan_s * 1e3, 2),
                     format_fixed(result.total_reconfig_s * 1e3, 2),
                     std::to_string(result.reuse_hits),
                     format_fixed(result.mean_wait_s * 1e3, 2)});
    }
  }
  // Non-PR baseline: full reconfiguration on every stage change.
  const SimResult nonpr = simulate_full_reconfig(
      prms, tasks, full_bitstream_bytes(device.fabric),
      StorageMedia::kDdrSdram);
  table.add_separator();
  table.add_row({"non-PR (full reconfig)", "-",
                 format_fixed(nonpr.makespan_s * 1e3, 2),
                 format_fixed(nonpr.total_reconfig_s * 1e3, 2),
                 std::to_string(nonpr.reuse_hits),
                 format_fixed(nonpr.mean_wait_s * 1e3, 2)});
  std::cout << table.to_ascii();
  return 0;
}
