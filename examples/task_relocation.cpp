// Hardware task relocation end-to-end: configure a PRM into one PRR,
// relocate its live frames to a compatible PRR through the configuration
// memory, and compare the time against reloading from storage (the HTR
// use case of the authors' prior work).
#include <iostream>

#include "bitstream/config_memory.hpp"
#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "htr/relocation.hpp"
#include "netlist/generators.hpp"
#include "reconfig/controllers.hpp"
#include "synth/synthesizer.hpp"
#include "util/strings.hpp"

int main() {
  using namespace prcost;
  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  const Family family = device.fabric.family();

  // Size a PRR for the SDRAM controller and load it.
  const SynthesisResult synth =
      synthesize(make_sdram_ctrl(), SynthOptions{family});
  const auto plan =
      find_prr(PrmRequirements::from_report(synth.report), device.fabric);
  if (!plan) return 1;
  ConfigMemory cm{device.fabric};
  cm.apply_bitstream(generate_bitstream(*plan, family));
  std::cout << "loaded " << synth.report.module_name << " into PRR at column "
            << plan->window.first_col << ", rows " << plan->first_row << ".."
            << plan->first_row + plan->organization.h - 1 << " ("
            << cm.frames_written() << " frames)\n";

  // Find a compatible, disjoint destination PRR.
  ColumnWindow dst{};
  bool found = false;
  for (const ColumnWindow& w :
       device.fabric.find_all_windows(plan->organization.columns)) {
    if (w.first_col >= plan->window.first_col + plan->window.width &&
        windows_compatible(device.fabric, plan->window, w)) {
      dst = w;
      found = true;
      break;
    }
  }
  if (!found) {
    std::cout << "no compatible destination PRR on this device\n";
    return 1;
  }

  const RelocationResult moved =
      relocate_region(cm, plan->window, plan->first_row, dst, plan->first_row,
                      plan->organization.h);
  std::cout << "relocated to column " << dst.first_col << ": "
            << moved.frames_copied << " frames ("
            << format_bytes(static_cast<double>(moved.words_copied) * 4)
            << ")\n";

  const IcapModel icap = default_icap(family);
  const RelocationTime time =
      relocation_time(plan->organization, device.fabric.traits(), icap);
  const DmaIcapController dma{icap};
  std::cout << "relocation time      : " << format_fixed(time.total_s * 1e6, 1)
            << " us (capture " << format_fixed(time.capture_s * 1e9, 0)
            << " ns, readback " << format_fixed(time.readback_s * 1e6, 1)
            << " us, rewrite " << format_fixed(time.rewrite_s * 1e6, 1)
            << " us)\n";
  for (const StorageMedia media :
       {StorageMedia::kCompactFlash, StorageMedia::kDdrSdram}) {
    std::cout << "reload from " << media_model(media).name << " : "
              << format_fixed(
                     dma.estimate(plan->bitstream.total_bytes, media).total_s *
                         1e6,
                     1)
              << " us\n";
  }
  return 0;
}
