// Early design-space exploration - the productivity story of the paper:
// evaluate EVERY PR partitioning of a set of PRMs in milliseconds, where
// the full PR design flow would take hours per point.
//
// Four PRMs are partitioned into PRR groups in all 15 ways; each design
// point is sized (Eqs. 1-7), floorplanned, bitstream-estimated (Eqs.
// 18-23) and scheduled. The Pareto front over (fabric area, makespan)
// comes out at the end.
#include <iostream>

#include "device/device_db.hpp"
#include "dse/explorer.hpp"
#include "netlist/generators.hpp"
#include "synth/synthesizer.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

std::string partition_to_string(const prcost::Partition& partition,
                                const std::vector<prcost::PrmInfo>& prms) {
  std::string out;
  for (const auto& group : partition) {
    out += "{";
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i) out += ",";
      out += prms[group[i]].name;
    }
    out += "}";
  }
  return out;
}

}  // namespace

int main() {
  using namespace prcost;
  const Device& device = DeviceDb::instance().get("xc6vlx240t");
  const Family family = device.fabric.family();

  std::vector<PrmInfo> prms;
  const auto add = [&](Netlist nl) {
    SynthesisResult synth = synthesize(std::move(nl), SynthOptions{family});
    prms.push_back(PrmInfo{synth.report.module_name,
                           PrmRequirements::from_report(synth.report), 0});
  };
  add(make_fir());
  add(make_sdram_ctrl());
  add(make_matmul());
  add(make_uart());

  WorkloadParams wp;
  wp.count = 120;
  wp.prm_count = 4;
  const auto workload = make_workload(wp);

  Stopwatch watch;
  const auto points = explore(prms, device.fabric, workload);
  const double explore_s = watch.seconds();

  TextTable table{{"partitioning", "PRRs", "total PRR area",
                   "bitstream bytes", "makespan (ms)", "feasible"}};
  for (const DesignPoint& point : points) {
    table.add_row({partition_to_string(point.partition, prms),
                   std::to_string(point.partition.size()),
                   std::to_string(point.total_prr_area),
                   std::to_string(point.total_bitstream_bytes),
                   point.feasible
                       ? format_fixed(point.makespan_s * 1e3, 2)
                       : "-",
                   point.feasible ? "yes" : point.infeasible_reason});
  }
  std::cout << table.to_ascii() << '\n';

  const auto front = pareto_front(points);
  std::cout << "Pareto front (area vs makespan):\n";
  for (const DesignPoint& point : front) {
    std::cout << "  " << partition_to_string(point.partition, prms)
              << "  area=" << point.total_prr_area << "  makespan="
              << format_fixed(point.makespan_s * 1e3, 2) << " ms\n";
  }
  std::cout << "\nExplored " << points.size() << " partitionings in "
            << format_fixed(explore_s * 1e3, 1)
            << " ms (the full PR design flow needs hours per point).\n";
  return 0;
}
